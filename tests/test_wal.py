"""Durability of the ingest spine (``repro-wal-v1``).

Three layers of contract:

* :class:`~repro.core.wal.WriteAheadLog` alone — record framing, CRC
  and torn-tail truncation, fsync-policy accounting, and compaction
  that survives a crash injected at *every* stage of the rotation.
* :class:`~repro.core.remote.ArchiveShardServer` with a WAL directory —
  a shard killed mid-append (chaos :class:`~repro.core.chaos.CrashAfter`)
  restarts from disk to bit-identical query results, client retries
  never double-append a record, and shutdown reports how many
  acknowledged records were still awaiting fsync.
* The replay property (issue satellite): for a seeded random
  insert/delete sequence, truncating the WAL after *any* prefix of its
  records — including mid-record torn tails — reconstructs exactly the
  state after that many acknowledged mutations.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.archive import InMemoryArchive
from repro.core.chaos import CrashAfter
from repro.core.remote import (
    ArchiveShardServer,
    RemoteShardedArchive,
    ShardUnavailableError,
    _WIRE_V,
)
from repro.core.wal import (
    FSYNC_POLICIES,
    SNAPSHOT_FORMAT,
    WAL_FORMAT,
    WalCorruptionError,
    WriteAheadLog,
    _RECORD_HEADER,
    read_log,
)
from tests.test_remote_archive import random_trips
from tests.test_replication import assert_identical_queries

TILE = 500.0


def _rows(*refs):
    """Synthetic ``[tid, idx, x, y, t]`` rows from ``(tid, idx)`` pairs."""
    return [[tid, idx, 100.0 * tid, 50.0 * idx, float(idx)] for tid, idx in refs]


def _fill(wal, n, start_lsn=0):
    for i in range(n):
        wal.append(start_lsn + i + 1, "insert", _rows((i, 0)))


def _log_file(directory):
    logs = sorted(Path(directory).glob("wal-*.log"))
    assert len(logs) == 1
    return logs[0]


class TestRecordFraming:
    def test_append_replay_roundtrip(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(1, "insert", _rows((7, 0), (7, 1)))
        wal.append(2, "delete", [[7, 0, 700.0, 0.0]])
        wal.close()

        header, records, valid, torn = read_log(_log_file(tmp_path))
        assert header == {"format": WAL_FORMAT, "generation": 0, "base_lsn": 0}
        assert torn == 0
        assert records == [
            (1, "insert", _rows((7, 0), (7, 1))),
            (2, "delete", [[7, 0, 700.0, 0.0]]),
        ]
        assert valid == _log_file(tmp_path).stat().st_size

    def test_reopen_recovers_records_and_continues(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        _fill(wal, 3)
        wal.close()

        reopened = WriteAheadLog(tmp_path)
        assert reopened.lsn == 3
        assert reopened.recovered_records == 3
        assert [lsn for lsn, __, __ in reopened.records] == [1, 2, 3]
        reopened.append(4, "insert", _rows((9, 9)))
        reopened.close()
        __, records, __, __ = read_log(_log_file(tmp_path))
        assert [lsn for lsn, __, __ in records] == [1, 2, 3, 4]

    def test_append_rejects_lsn_gap_and_closed_log(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(1, "insert", _rows((1, 0)))
        with pytest.raises(ValueError, match="gap"):
            wal.append(3, "insert", _rows((2, 0)))
        assert wal.close() == 0
        with pytest.raises(ValueError, match="closed"):
            wal.append(2, "insert", _rows((2, 0)))

    def test_constructor_validates_policy_and_interval(self, tmp_path):
        with pytest.raises(ValueError, match="fsync policy"):
            WriteAheadLog(tmp_path, fsync="sometimes")
        with pytest.raises(ValueError, match="positive"):
            WriteAheadLog(tmp_path, fsync="interval", fsync_interval_s=0.0)

    def test_crc_flip_drops_the_corrupted_suffix(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        _fill(wal, 3)
        wal.close()
        path = _log_file(tmp_path)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip one payload byte of the final record
        path.write_bytes(bytes(data))

        __, records, valid, torn = read_log(path)
        assert [lsn for lsn, __, __ in records] == [1, 2]
        assert torn > 0

        reopened = WriteAheadLog(tmp_path)
        assert reopened.lsn == 2
        assert reopened.truncated_bytes == torn
        assert path.stat().st_size == valid  # torn tail truncated in place
        reopened.close()


class TestTornTails:
    def test_every_truncation_point_recovers_longest_valid_prefix(self, tmp_path):
        source = tmp_path / "source"
        wal = WriteAheadLog(source)
        _fill(wal, 3)
        wal.close()
        data = _log_file(source).read_bytes()

        # Record boundaries: header record + 3 mutation records.
        boundaries = []
        offset = 0
        while offset < len(data):
            length, __ = _RECORD_HEADER.unpack_from(data, offset)
            offset += _RECORD_HEADER.size + length
            boundaries.append(offset)
        assert len(boundaries) == 4 and boundaries[-1] == len(data)

        for cut in range(len(data) + 1):
            trial = tmp_path / f"cut-{cut}"
            trial.mkdir()
            (trial / _log_file(source).name).write_bytes(data[:cut])
            expected = sum(1 for b in boundaries[1:] if b <= cut)
            if cut < boundaries[0]:
                # Even the file header is torn: generation 0 restarts empty.
                reopened = WriteAheadLog(trial)
                assert (reopened.lsn, reopened.recovered_records) == (0, 0)
            else:
                reopened = WriteAheadLog(trial)
                assert reopened.recovered_records == expected
                assert reopened.lsn == expected
                # Recovery truncated the torn tail; a re-open is clean.
                assert reopened.truncated_bytes == cut - boundaries[expected]
            reopened.close()
            again = WriteAheadLog(trial)
            assert again.truncated_bytes == 0
            again.close()

    def test_torn_header_without_snapshot_past_gen_zero_is_fatal(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        _fill(wal, 2)
        wal.rotate(_rows((0, 0), (1, 0)), 2)
        wal.close()
        log = _log_file(tmp_path)
        snapshot = tmp_path / "snapshot-00000001.json"
        assert snapshot.exists()
        log.write_bytes(b"\x00\x00")  # torn header
        snapshot.unlink()  # and no snapshot to fall back on
        with pytest.raises(WalCorruptionError, match="no readable header"):
            WriteAheadLog(tmp_path)

    def test_mismatched_snapshot_format_is_fatal(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        _fill(wal, 1)
        wal.rotate(_rows((0, 0)), 1)
        wal.close()
        snapshot = tmp_path / "snapshot-00000001.json"
        blob = json.loads(snapshot.read_text(encoding="utf-8"))
        assert blob["format"] == SNAPSHOT_FORMAT
        blob["format"] = "something-else"
        snapshot.write_text(json.dumps(blob), encoding="utf-8")
        with pytest.raises(WalCorruptionError, match="snapshot"):
            WriteAheadLog(tmp_path)


class TestFsyncPolicies:
    def test_policies_are_the_documented_triple(self):
        assert FSYNC_POLICIES == ("always", "interval", "off")

    def test_always_fsyncs_every_append(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="always")
        _fill(wal, 4)
        assert wal.fsyncs == 4
        assert wal.unflushed_records == 0
        assert wal.close() == 0

    def test_off_defers_until_close_and_reports_pending(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        _fill(wal, 5)
        assert wal.fsyncs == 0
        assert wal.unflushed_records == 5
        assert wal.close() == 5  # durable now, but a crash lost these
        reopened = WriteAheadLog(tmp_path, fsync="off")
        assert reopened.recovered_records == 5  # flush made them readable
        reopened.close()

    def test_interval_batches_fsyncs(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="interval", fsync_interval_s=3600.0)
        _fill(wal, 4)
        assert wal.fsyncs == 0  # interval far in the future
        assert wal.unflushed_records == 4
        wal.sync()
        assert wal.fsyncs == 1 and wal.unflushed_records == 0
        wal._last_fsync -= 7200.0  # pretend the interval elapsed
        wal.append(5, "insert", _rows((5, 0)))
        assert wal.fsyncs == 2 and wal.unflushed_records == 0
        wal.close()


class TestCompaction:
    def test_rotate_switches_generation_and_drops_the_old(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        _fill(wal, 3)
        snapshot_rows = _rows((0, 0), (1, 0), (2, 0))
        wal.rotate(snapshot_rows, 3)
        assert (wal.generation, wal.base_lsn, wal.lsn) == (1, 3, 3)
        assert wal.compactions == 1
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["snapshot-00000001.json", "wal-00000001.log"]
        wal.append(4, "insert", _rows((3, 0)))
        wal.close()

        reopened = WriteAheadLog(tmp_path)
        assert (reopened.generation, reopened.base_lsn, reopened.lsn) == (1, 3, 4)
        assert reopened.snapshot_rows == snapshot_rows
        assert reopened.records == [(4, "insert", _rows((3, 0)))]
        reopened.close()

    @pytest.mark.parametrize(
        "stage", ["snapshot-write", "snapshot-rename", "log-create", "old-delete"]
    )
    def test_crash_at_every_compaction_stage_loses_nothing(self, tmp_path, stage):
        class Boom(RuntimeError):
            pass

        wal = WriteAheadLog(tmp_path)
        _fill(wal, 3)
        full_rows = _rows((0, 0), (1, 0), (2, 0))

        def crash(at):
            if at == stage:
                raise Boom(at)

        wal.fault_hook = crash
        with pytest.raises(Boom):
            wal.rotate(full_rows, 3)
        # Simulate the process death: drop the handle without close().
        wal._fh = None

        recovered = WriteAheadLog(tmp_path)
        assert recovered.lsn == 3
        if recovered.snapshot_rows is None:
            # Crashed before the snapshot rename: old generation intact.
            assert recovered.generation == 0
            assert [lsn for lsn, __, __ in recovered.records] == [1, 2, 3]
        else:
            # Crashed after the commit point: new generation authoritative.
            assert recovered.generation == 1
            assert recovered.snapshot_rows == full_rows
            assert recovered.records == []
        # Either way the WAL keeps accepting appends where it left off.
        recovered.append(4, "insert", _rows((9, 0)))
        recovered.close()

    def test_orphaned_tmp_files_are_swept(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        _fill(wal, 2)
        wal.close()
        orphan = tmp_path / "snapshot-00000001.json.tmp"
        orphan.write_text("{\"half\":", encoding="utf-8")
        reopened = WriteAheadLog(tmp_path)
        assert not orphan.exists()
        assert reopened.lsn == 2
        reopened.close()

    def test_stale_generations_are_swept(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        _fill(wal, 2)
        wal.rotate(_rows((0, 0), (1, 0)), 2)
        wal.close()
        # Plant a leftover older generation next to the live one.
        stale = tmp_path / "wal-00000000.log"
        stale.write_bytes(b"leftover")
        reopened = WriteAheadLog(tmp_path)
        assert not stale.exists()
        assert (reopened.generation, reopened.lsn) == (1, 2)
        reopened.close()


def _serve(tmp_path, name="wal", **kwargs):
    return ArchiveShardServer(
        0, 1, TILE, wal_dir=tmp_path / name, **kwargs
    ).start()


def _client(server, **kwargs):
    kwargs.setdefault("timeout_s", 5.0)
    return RemoteShardedArchive([f"127.0.0.1:{server.address[1]}"], **kwargs)


def _served_points(remote):
    """Point count as the *servers* see it (a fresh client holds no trips)."""
    return sum(s["num_points"] for s in remote.shard_stats())


class TestServerRecovery:
    def test_clean_restart_is_bit_identical(self, tmp_path):
        rng = np.random.default_rng(11)
        trips = random_trips(rng, n_trips=8)
        mem = InMemoryArchive()
        server = _serve(tmp_path)
        remote = _client(server)
        for trip in trips:
            assert mem.add(trip) == remote.add(trip)
        assert mem.remove(2) == remote.remove(2)
        remote.close()
        assert server.stop() == 0  # fsync=always leaves nothing pending

        reborn = _serve(tmp_path)
        remote = _client(reborn)
        try:
            assert _served_points(remote) == mem.num_points
            assert_identical_queries(mem, remote, np.random.default_rng(12))
        finally:
            remote.close()
            reborn.stop()

    def test_kill_mid_append_recovers_and_repush_is_idempotent(self, tmp_path):
        """The headline chaos scenario: a shard dies *mid-insert* (request
        received, no reply), restarts from its WAL, and an idempotent
        re-push of the whole feed converges to bit-identical results."""
        rng = np.random.default_rng(21)
        trips = random_trips(rng, n_trips=8)
        mem = InMemoryArchive()
        for trip in trips:
            mem.add(trip)

        server = _serve(tmp_path)
        server.fault_hook = CrashAfter(server, op="insert", nth=5)
        remote = _client(server, retries=0)
        with pytest.raises(ShardUnavailableError):
            for trip in trips:
                remote.add(trip)
        remote.close()
        # CrashAfter stops the server from a helper thread; wait for the
        # WAL handle to be released before reopening the directory.
        deadline = time.monotonic() + 5.0
        while server._wal._fh is not None and time.monotonic() < deadline:
            time.sleep(0.01)
        assert server._wal._fh is None

        reborn = _serve(tmp_path)
        remote = _client(reborn)
        try:
            # Inserts 1–4 were acked (and fsynced) pre-crash; the 5th died
            # mid-request, before any state change.
            assert reborn._lsn == 4
            for trip in trips:  # same ids in the same order: idempotent
                remote.add(trip)
            assert reborn._lsn == len(trips)  # survivors appended nothing
            assert _served_points(remote) == mem.num_points
            assert_identical_queries(mem, remote, np.random.default_rng(22))
        finally:
            remote.close()
            reborn.stop()

    def test_recovery_replays_through_compaction(self, tmp_path):
        rng = np.random.default_rng(31)
        trips = random_trips(rng, n_trips=10)
        mem = InMemoryArchive()
        server = _serve(tmp_path, compact_every=3)
        remote = _client(server)
        for trip in trips:
            assert mem.add(trip) == remote.add(trip)
        stats = server._wal.stats()
        assert stats["compactions"] >= 1
        assert stats["base_lsn"] > 0
        remote.close()
        server.stop()

        reborn = _serve(tmp_path, compact_every=3)
        remote = _client(reborn)
        try:
            assert reborn._wal.stats()["recovered_snapshot_rows"] > 0
            assert _served_points(remote) == mem.num_points
            assert_identical_queries(mem, remote, np.random.default_rng(32))
        finally:
            remote.close()
            reborn.stop()


class TestShutdownAndIdempotence:
    """Issue satellite: shutdown flushes/reports, retries never double-append."""

    def test_stop_reports_unflushed_records_under_fsync_off(self, tmp_path):
        server = _serve(tmp_path, fsync="off")
        remote = _client(server)
        for trip in random_trips(np.random.default_rng(41), n_trips=4):
            remote.add(trip)
        remote.close()
        pending = server.stop()
        assert pending == 4  # one journal record per (effective) insert
        # ... and close() made even those durable:
        reborn = _serve(tmp_path, fsync="off")
        assert reborn._wal.stats()["recovered_records"] == 4
        reborn.stop()

    def test_stop_reports_zero_under_fsync_always(self, tmp_path):
        server = _serve(tmp_path)
        remote = _client(server)
        remote.add(random_trips(np.random.default_rng(42), n_trips=1)[0])
        remote.close()
        assert server.stop() == 0

    def test_retried_insert_does_not_double_append(self, tmp_path):
        server = _serve(tmp_path)
        rows = [[1, 0, 100.0, 100.0, 0.0], [1, 1, 300.0, 300.0, 30.0]]
        first = server._dispatch({"op": "insert", "v": _WIRE_V, "points": rows})
        assert first["ok"] and first["lsn"] == 1
        assert server._wal.stats()["records_appended"] == 1
        # The retry finds every row resident: no record, no LSN bump.
        retry = server._dispatch({"op": "insert", "v": _WIRE_V, "points": rows})
        assert retry["ok"] and retry["lsn"] == 1
        assert retry["num_points"] == first["num_points"] == 2
        assert server._wal.stats()["records_appended"] == 1
        assert len(server._log) == 1
        # Same for a delete of already-deleted rows.
        gone = server._dispatch({"op": "delete", "v": _WIRE_V, "points": rows})
        assert gone["ok"] and gone["lsn"] == 2
        again = server._dispatch({"op": "delete", "v": _WIRE_V, "points": rows})
        assert again["ok"] and again["lsn"] == 2
        assert server._wal.stats()["records_appended"] == 2
        server.stop()


class TestPrefixReplayProperty:
    """Issue satellite: replaying *any* WAL prefix — including a torn
    final record — reconstructs exactly the state after that many
    acknowledged mutations, on seeded random insert/delete sequences."""

    def _mutate_randomly(self, server, rng, n_mutations=24):
        """Drive a random mutation sequence; return the canonical row
        snapshot recorded after every journalled record."""
        live = {}
        snapshots = [server._snapshot_rows()]
        next_tid = 0
        for __ in range(n_mutations):
            if live and rng.random() < 0.3:
                tid = int(rng.choice(sorted({t for t, __ in live})))
                rows = [
                    [t, i, x, y] for (t, i), (x, y, __) in sorted(live.items())
                    if t == tid
                ]
                reply = server._dispatch(
                    {"op": "delete", "v": _WIRE_V, "points": rows}
                )
                assert reply["ok"]
                for t, i, __, __x in rows:
                    live.pop((t, i))
            else:
                tid = next_tid
                next_tid += 1
                rows = []
                for idx in range(int(rng.integers(1, 4))):
                    x, y = (float(v) for v in rng.uniform(0.0, 3_000.0, size=2))
                    rows.append([tid, idx, x, y, 30.0 * idx])
                    live[(tid, idx)] = (x, y, 30.0 * idx)
                reply = server._dispatch(
                    {"op": "insert", "v": _WIRE_V, "points": rows}
                )
                assert reply["ok"]
            if reply["lsn"] == len(snapshots):  # this mutation journalled
                snapshots.append(server._snapshot_rows())
        assert server._lsn == len(snapshots) - 1
        return snapshots

    def _record_boundaries(self, data):
        boundaries = []
        offset = 0
        while offset < len(data):
            length, __ = _RECORD_HEADER.unpack_from(data, offset)
            offset += _RECORD_HEADER.size + length
            boundaries.append(offset)
        return boundaries

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_every_prefix_reconstructs_exact_state(self, tmp_path, seed):
        rng = np.random.default_rng(seed)
        source = tmp_path / "source"
        server = ArchiveShardServer(
            0, 1, TILE, wal_dir=source, compact_every=0
        ).start()
        try:
            snapshots = self._mutate_randomly(server, rng)
        finally:
            server.stop()

        data = _log_file(source).read_bytes()
        boundaries = self._record_boundaries(data)
        assert len(boundaries) == len(snapshots)  # header + one per record

        for k in range(len(snapshots)):
            cuts = [boundaries[k]]
            if k + 1 < len(boundaries):
                # A torn final record must replay like the clean prefix.
                torn_extra = int(rng.integers(1, boundaries[k + 1] - boundaries[k]))
                cuts.append(boundaries[k] + torn_extra)
            for cut in cuts:
                trial = tmp_path / f"s{seed}-k{k}-c{cut}"
                trial.mkdir()
                (trial / _log_file(source).name).write_bytes(data[:cut])
                replayed = ArchiveShardServer(0, 1, TILE, wal_dir=trial).start()
                try:
                    assert replayed._lsn == k
                    assert replayed._snapshot_rows() == snapshots[k]
                finally:
                    replayed.stop()
