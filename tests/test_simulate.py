"""Unit tests for the vehicle simulator."""

import math

import numpy as np
import pytest

from repro.roadnet.generators import GridCityConfig, grid_city, manhattan_line
from repro.roadnet.route import Route
from repro.roadnet.shortest_path import shortest_route_between_nodes
from repro.trajectory.simulate import DriveConfig, drive_route


@pytest.fixture(scope="module")
def line():
    return manhattan_line(n_nodes=10, spacing=200.0)


@pytest.fixture(scope="module")
def straight_route(line):
    __, route = shortest_route_between_nodes(line, 0, 9)
    return route


class TestDriveConfig:
    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            DriveConfig(sample_interval_s=0)

    def test_invalid_speed_factor(self):
        with pytest.raises(ValueError):
            DriveConfig(speed_factor=2.0)

    def test_invalid_noise(self):
        with pytest.raises(ValueError):
            DriveConfig(speed_noise=-0.1)
        with pytest.raises(ValueError):
            DriveConfig(gps_sigma_m=-1.0)


class TestDriveRoute:
    def test_empty_route_raises(self, line):
        with pytest.raises(ValueError):
            drive_route(line, Route.empty(), 1)

    def test_disconnected_route_raises(self, line):
        with pytest.raises(ValueError):
            drive_route(line, Route.of([0, 6]), 1)

    def test_endpoints_near_route_ends(self, line, straight_route):
        cfg = DriveConfig(sample_interval_s=10.0, gps_sigma_m=0.0)
        d = drive_route(line, straight_route, 1, config=cfg, rng=np.random.default_rng(1))
        t = d.trajectory
        assert t[0].point.distance_to(straight_route.start_point(line)) < 1e-6
        assert t[len(t) - 1].point.distance_to(straight_route.end_point(line)) < 1e-6

    def test_sampling_interval_respected(self, line, straight_route):
        cfg = DriveConfig(sample_interval_s=10.0, gps_sigma_m=0.0)
        d = drive_route(line, straight_route, 1, config=cfg, rng=np.random.default_rng(2))
        gaps = [
            b.t - a.t for a, b in zip(d.trajectory.points, d.trajectory.points[1:-1])
        ]
        assert all(math.isclose(g, 10.0, rel_tol=1e-9) for g in gaps)

    def test_duration_consistent_with_speed(self, line, straight_route):
        cfg = DriveConfig(
            sample_interval_s=5.0, speed_factor=0.8, speed_noise=0.0, gps_sigma_m=0.0
        )
        d = drive_route(line, straight_route, 1, config=cfg, rng=np.random.default_rng(3))
        length = straight_route.length(line)
        speed = line.max_speed * 0.8
        assert math.isclose(d.trajectory.duration, length / speed, rel_tol=0.02)

    def test_clean_samples_lie_on_route(self, line, straight_route):
        cfg = DriveConfig(sample_interval_s=7.0, gps_sigma_m=0.0)
        d = drive_route(line, straight_route, 1, config=cfg, rng=np.random.default_rng(4))
        for p in d.trajectory.points:
            # The straight route runs along y = 0.
            assert abs(p.point.y) < 1e-6

    def test_noise_applied(self, line, straight_route):
        cfg = DriveConfig(sample_interval_s=7.0, gps_sigma_m=20.0)
        d = drive_route(line, straight_route, 1, config=cfg, rng=np.random.default_rng(5))
        assert any(abs(p.point.y) > 1.0 for p in d.trajectory.points)

    def test_start_time_honored(self, line, straight_route):
        d = drive_route(
            line, straight_route, 1, start_time=1000.0, rng=np.random.default_rng(6)
        )
        assert d.trajectory.start_time == 1000.0

    def test_traj_id_assigned(self, line, straight_route):
        d = drive_route(line, straight_route, 42, rng=np.random.default_rng(7))
        assert d.trajectory.traj_id == 42

    def test_deterministic(self, line, straight_route):
        a = drive_route(line, straight_route, 1, rng=np.random.default_rng(8))
        b = drive_route(line, straight_route, 1, rng=np.random.default_rng(8))
        assert [p.point for p in a.trajectory.points] == [
            p.point for p in b.trajectory.points
        ]

    def test_ground_truth_is_input_route(self, line, straight_route):
        d = drive_route(line, straight_route, 1, rng=np.random.default_rng(9))
        assert d.route is straight_route

    def test_city_drive(self):
        net = grid_city(GridCityConfig(nx=6, ny=6), np.random.default_rng(10))
        __, route = shortest_route_between_nodes(net, 0, 35)
        d = drive_route(net, route, 1, rng=np.random.default_rng(11))
        assert len(d.trajectory) > 3
