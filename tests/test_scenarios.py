"""Tests for the harness scenario builders and the paper's observations.

The synthetic data generator must exhibit, by construction, the two
observations that motivate the paper (Sec. I-A) — otherwise the
reproduction would be testing HRIS on data where its premise fails.
"""

import numpy as np
import pytest

from repro.eval.harness import density_family, sparse_scenario, standard_scenario


class TestStandardScenario:
    @pytest.fixture(scope="class")
    def scenario(self):
        return standard_scenario(seed=99, n_queries=4)

    def test_shape(self, scenario):
        assert scenario.network.num_nodes == 14 * 14
        assert len(scenario.queries) == 4
        assert len(scenario.archive) > 200

    def test_observation1_skewed_travel_patterns(self, scenario):
        """Observation 1: travel patterns between locations are highly
        skewed — the top route of every OD carries most of the demand."""
        for probs in scenario.route_probabilities:
            assert probs[0] == max(probs)
            if len(probs) > 1:
                assert probs[0] > 1.5 * probs[1]

    def test_observation2_interleaving_samples(self, scenario):
        """Observation 2: trajectories on the same route complement each
        other — their samples interleave along the corridor rather than
        clustering at the same spots."""
        # Find two archive trips on the same (most popular) route of the
        # first OD: drives started at random times, so their samples are
        # phase-shifted along the road.
        top_route = scenario.od_routes[0][0]
        corridor = top_route.points(scenario.network)
        from repro.geo.polyline import project_point_to_polyline

        offsets_by_trip = {}
        for trip in scenario.archive.trajectories():
            offsets = []
            for p in trip.points:
                proj = project_point_to_polyline(p.point, corridor)
                if proj.distance < 60.0:
                    offsets.append(proj.offset)
            if len(offsets) >= 3:
                offsets_by_trip[trip.traj_id] = sorted(offsets)
        assert len(offsets_by_trip) >= 2, "no two trips share the corridor"
        trips = list(offsets_by_trip.values())[:2]
        # Interleaving: merging the two offset lists must alternate owners
        # at least once (i.e. neither trip's samples are a contiguous block).
        merged = sorted(
            [(o, 0) for o in trips[0]] + [(o, 1) for o in trips[1]]
        )
        owners = [owner for __, owner in merged]
        switches = sum(1 for a, b in zip(owners, owners[1:]) if a != b)
        assert switches >= 2

    def test_archive_mixes_quality(self, scenario):
        """The data-quality condition of Sec. I-B: high- and low-rate
        history co-exist."""
        intervals = [
            t.mean_sampling_interval for t in scenario.archive.trajectories()
        ]
        assert min(intervals) < 120.0 < max(intervals)


class TestSparseScenario:
    def test_sparser_than_standard(self):
        sparse = sparse_scenario(seed=5, n_queries=2)
        standard = standard_scenario(seed=5, n_queries=2)
        sparse_density = sparse.archive.num_points / max(
            sparse.network.bbox().area, 1
        )
        standard_density = standard.archive.num_points / max(
            standard.network.bbox().area, 1
        )
        assert sparse_density < standard_density


class TestDensityFamily:
    def test_shared_world_varied_archive(self):
        family = density_family([10, 40], seed=31, n_queries=3)
        small, large = family[10], family[40]
        # Same network object and identical queries...
        assert small.network is large.network
        assert [c.truth.segment_ids for c in small.queries] == [
            c.truth.segment_ids for c in large.queries
        ]
        # ...but differently sized archives, subsampled from one pool.
        assert len(small.archive) < len(large.archive)
        large_keys = {
            tuple(p.t for p in t.points) for t in large.archive.trajectories()
        }
        for trip in small.archive.trajectories():
            assert tuple(p.t for p in trip.points) in large_keys
