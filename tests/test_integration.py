"""End-to-end integration tests: the paper's headline claims in miniature.

These run the full pipeline — scenario generation, preprocessing, all four
matchers — and assert the *qualitative* results of Sec. IV hold:

* HRIS beats every baseline at low sampling rates (Fig. 8a),
* HRIS degrades gracefully while baselines collapse,
* increasing k3 never decreases the best-of-k accuracy (Fig. 14a),
* the hybrid is never much worse than the better of TGI/NNI.
"""

import numpy as np
import pytest

from repro.core.system import HRIS, HRISConfig, HRISMatcher
from repro.datasets.synthetic import ScenarioConfig, build_scenario
from repro.eval.metrics import route_accuracy
from repro.mapmatching import IncrementalMatcher, IVMMMatcher, STMatcher
from repro.roadnet.generators import GridCityConfig
from repro.trajectory.resample import downsample


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(
        ScenarioConfig(
            grid=GridCityConfig(nx=12, ny=12),
            n_od_pairs=6,
            n_archive_trips=150,
            n_background_trips=12,
            min_od_distance=3500.0,
            n_queries=6,
            seed=21,
        )
    )


def mean_accuracy(scenario, matcher, interval):
    accs = []
    for case in scenario.queries:
        q = downsample(case.query, interval)
        if len(q) < 2:
            continue
        accs.append(
            route_accuracy(scenario.network, case.truth, matcher.match(q).route)
        )
    return float(np.mean(accs))


class TestHeadlineClaims:
    def test_hris_beats_baselines_at_low_rate(self, scenario):
        net = scenario.network
        hris = HRISMatcher(HRIS(net, scenario.archive, HRISConfig()))
        baselines = [IVMMMatcher(net), STMatcher(net), IncrementalMatcher(net)]
        interval = 420.0  # 7 minutes
        hris_acc = mean_accuracy(scenario, hris, interval)
        for baseline in baselines:
            assert hris_acc > mean_accuracy(scenario, baseline, interval)

    def test_hris_graceful_degradation(self, scenario):
        net = scenario.network
        hris = HRISMatcher(HRIS(net, scenario.archive, HRISConfig()))
        acc_3 = mean_accuracy(scenario, hris, 180.0)
        acc_15 = mean_accuracy(scenario, hris, 900.0)
        assert acc_15 > 0.35  # paper: HRIS stays useful at 15 min
        assert acc_3 - acc_15 < 0.5  # no cliff

    def test_baseline_collapse_at_low_rate(self, scenario):
        net = scenario.network
        st = STMatcher(net)
        acc_3 = mean_accuracy(scenario, st, 180.0)
        acc_15 = mean_accuracy(scenario, st, 900.0)
        assert acc_15 < acc_3  # the shortest-path assumption breaks down


class TestTopK:
    def test_best_of_k_monotone(self, scenario):
        net = scenario.network
        hris = HRIS(net, scenario.archive, HRISConfig())
        case = scenario.queries[0]
        q = downsample(case.query, 300.0)
        best = []
        for k in (1, 3, 5):
            routes = hris.infer_routes(q, k)
            best.append(
                max(route_accuracy(net, case.truth, r.route) for r in routes)
            )
        assert best[0] <= best[1] + 1e-9
        assert best[1] <= best[2] + 1e-9


class TestHybridSanity:
    def test_hybrid_not_much_worse_than_best_pure_method(self, scenario):
        net = scenario.network
        interval = 300.0
        accs = {}
        for method in ("hybrid", "tgi", "nni"):
            hris = HRISMatcher(
                HRIS(net, scenario.archive, HRISConfig(local_method=method))
            )
            accs[method] = mean_accuracy(scenario, hris, interval)
        # The density heuristic can pick the worse method on individual
        # pairs, so the hybrid is only required to stay in the same band as
        # the pure strategies — never to collapse below both.
        assert accs["hybrid"] >= min(accs["tgi"], accs["nni"]) - 0.05
        assert accs["hybrid"] >= max(accs["tgi"], accs["nni"]) - 0.15
