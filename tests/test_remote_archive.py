"""Distributed archive correctness: fan-out equivalence and failure paths.

The contract under test mirrors ``tests/test_sharded_archive.py`` one
level up the deployment ladder: :class:`RemoteShardedArchive` backed by a
fleet of loopback :class:`ArchiveShardServer` processes must return
*bit-identical* query results to :class:`InMemoryArchive` on identical
trips — including pair queries straddling shard-ownership boundaries —
and a degraded shard must surface as a typed error after a bounded retry
schedule, never as a hang.
"""

import math
import socket
import threading
import time

import numpy as np
import pytest

from repro.core.archive import InMemoryArchive, convert_archive, make_archive
from repro.core.remote import (
    PROTOCOL_VERSION,
    ArchiveShardServer,
    RemoteShardedArchive,
    ShardProtocolError,
    ShardTimeoutError,
    ShardUnavailableError,
    _ShardConnection,
    _WIRE_V,
    parse_address,
    request_shutdown,
    shard_of_tile,
)
from repro.geo.bbox import BBox
from repro.geo.point import Point
from repro.trajectory.model import GPSPoint, Trajectory

TILE = 500.0
NUM_SHARDS = 3


def random_trips(rng, n_trips=12, extent=4_000.0):
    """Random trajectories with 200–900 m strides: most cross several
    tiles, so their points land on different owning shards."""
    trips = []
    for __ in range(n_trips):
        n = int(rng.integers(2, 12))
        x, y = rng.uniform(0.0, extent, size=2)
        pts = []
        t = 0.0
        for __ in range(n):
            pts.append(GPSPoint(Point(x, y), t))
            heading = rng.uniform(0.0, 2.0 * math.pi)
            step = rng.uniform(200.0, 900.0)
            x += step * math.cos(heading)
            y += step * math.sin(heading)
            t += 30.0
        trips.append(Trajectory.build(0, pts))
    return trips


@pytest.fixture
def cluster():
    servers = [ArchiveShardServer(i, NUM_SHARDS, TILE).start() for i in range(NUM_SHARDS)]
    addrs = [f"127.0.0.1:{s.address[1]}" for s in servers]
    yield servers, addrs
    for server in servers:
        server.stop()


def matched_archives(rng, addrs, n_trips=12):
    mem = InMemoryArchive()
    remote = RemoteShardedArchive(addrs, timeout_s=5.0)
    for trip in random_trips(rng, n_trips):
        assert mem.add(trip) == remote.add(trip)
    return mem, remote


class TestOwnership:
    def test_shard_of_tile_is_deterministic_and_total(self):
        for key in [(0, 0), (-3, 7), (12, -5), (1000, 1000), (-1, -1)]:
            owner = shard_of_tile(key, NUM_SHARDS)
            assert 0 <= owner < NUM_SHARDS
            assert owner == shard_of_tile(key, NUM_SHARDS)  # pure function
        with pytest.raises(ValueError):
            shard_of_tile((0, 0), 0)

    def test_server_rejects_unowned_insert(self, cluster):
        servers, addrs = cluster
        # Find a tile NOT owned by shard 0 and push a point there directly.
        key = next(
            (ix, 0) for ix in range(64) if shard_of_tile((ix, 0), NUM_SHARDS) != 0
        )
        x = (key[0] + 0.5) * TILE
        conn = _ShardConnection(parse_address(addrs[0]), 5.0, 0, 0.0, [])
        try:
            with pytest.raises(ShardProtocolError, match="owned by"):
                conn.request(
                    {"op": "insert", "v": _WIRE_V, "points": [[0, 0, x, 250.0]]}
                )
        finally:
            conn.close()

    def test_server_rejects_wrong_wire_version(self, cluster):
        __, addrs = cluster
        conn = _ShardConnection(parse_address(addrs[0]), 5.0, 0, 0.0, [])
        try:
            with pytest.raises(ShardProtocolError, match="wire version"):
                conn.request({"op": "ping", "v": 99})
        finally:
            conn.close()


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_randomised_queries_identical(self, cluster, seed):
        __, addrs = cluster
        rng = np.random.default_rng(seed)
        mem, remote = matched_archives(rng, addrs)
        for __ in range(20):
            q = Point(*rng.uniform(-500.0, 4_500.0, size=2))
            radius = float(rng.uniform(50.0, 1_500.0))
            assert mem.points_near(q, radius) == remote.points_near(q, radius)
            x0, y0 = rng.uniform(-500.0, 4_000.0, size=2)
            box = BBox(
                x0, y0, x0 + rng.uniform(10.0, 2_000.0), y0 + rng.uniform(10.0, 2_000.0)
            )
            assert mem.points_in_bbox(box) == remote.points_in_bbox(box)
            assert mem.density_per_km2(box) == remote.density_per_km2(box)
        remote.close()

    @pytest.mark.parametrize("seed", range(4))
    def test_pair_queries_straddle_ownership_boundaries(self, cluster, seed):
        __, addrs = cluster
        rng = np.random.default_rng(100 + seed)
        mem, remote = matched_archives(rng, addrs)
        # The fleet must actually be split for the test to mean anything.
        resident = [s["num_points"] for s in remote.shard_stats()]
        assert sum(1 for n in resident if n > 0) >= 2
        for __ in range(12):
            qi = Point(*rng.uniform(0.0, 4_000.0, size=2))
            qi1 = Point(*rng.uniform(0.0, 4_000.0, size=2))
            radius = float(rng.uniform(400.0, 1_500.0))
            assert mem.trajectories_near_pair(qi, qi1, radius) == (
                remote.trajectories_near_pair(qi, qi1, radius)
            )
        remote.close()

    def test_merged_results_are_canonically_ordered(self, cluster):
        __, addrs = cluster
        rng = np.random.default_rng(42)
        mem, remote = matched_archives(rng, addrs, n_trips=16)
        q = Point(2_000.0, 2_000.0)
        hits = remote.points_near(q, 2_500.0)
        assert hits == sorted(hits, key=lambda ref: (ref.traj_id, ref.index))
        # The big radius spans tiles owned by several shards.
        owners = {
            shard_of_tile(remote.tile_key(remote.point(ref).point), NUM_SHARDS)
            for ref in hits
        }
        assert len(owners) >= 2
        near_i, near_j = remote.trajectories_near_pair(q, Point(500.0, 3_500.0), 2_000.0)
        for near in (near_i, near_j):
            assert list(near) == sorted(near)
            assert all(idxs == sorted(idxs) for idxs in near.values())
        remote.close()

    def test_mutations_forwarded_to_owners(self, cluster):
        __, addrs = cluster
        rng = np.random.default_rng(7)
        mem, remote = matched_archives(rng, addrs, n_trips=8)
        probe = Point(2_000.0, 2_000.0)
        extra = random_trips(rng, 1)[0]
        assert mem.add(extra) == remote.add(extra)
        victim = mem.trajectory_ids()[0]
        assert mem.remove(victim) and remote.remove(victim)
        for radius in (200.0, 800.0, 3_000.0):
            assert mem.points_near(probe, radius) == remote.points_near(probe, radius)
        assert sum(s["num_points"] for s in remote.shard_stats()) == mem.num_points
        remote.close()

    def test_preload_and_attach(self, cluster):
        servers, addrs = cluster
        rng = np.random.default_rng(9)
        mem = InMemoryArchive()
        for trip in random_trips(rng):
            mem.add(trip)
        for server in servers:
            server.preload(mem.iter_points())
        remote = RemoteShardedArchive(addrs)
        remote.attach_trips(mem.trajectories())
        assert sum(s["num_points"] for s in remote.shard_stats()) == mem.num_points
        q = Point(1_500.0, 1_500.0)
        assert mem.trajectories_near(q, 2_000.0) == remote.trajectories_near(q, 2_000.0)
        with pytest.raises(ValueError, match="already present"):
            remote.attach_trips([mem.trajectory(mem.trajectory_ids()[0])])
        remote.close()

    def test_convert_archive_push_is_idempotent(self, cluster):
        servers, addrs = cluster
        rng = np.random.default_rng(11)
        mem = InMemoryArchive()
        for trip in random_trips(rng):
            mem.add(trip)
        for server in servers:  # pre-seed, then convert pushes the same points
            server.preload(mem.iter_points())
        remote = convert_archive(mem, "remote", shard_addrs=addrs)
        assert remote.trajectory_ids() == mem.trajectory_ids()
        assert sum(s["num_points"] for s in remote.shard_stats()) == mem.num_points
        q = Point(500.0, 500.0)
        assert mem.points_near(q, 2_000.0) == remote.points_near(q, 2_000.0)
        remote.close()


class TestFailureSurface:
    def test_stalled_shard_bounded_retry_then_typed_error(self):
        """A shard that answers the handshake then goes silent must cost a
        bounded number of attempts and raise ShardTimeoutError — not hang."""
        hello = {
            "ok": True,
            "protocol": PROTOCOL_VERSION,
            "shard_index": 0,
            "num_shards": 1,
            "tile_size": TILE,
            "num_points": 0,
            "num_tiles": 0,
        }
        accepted = []

        def handle(sock):
            from repro.core.remote import _recv_frame, _send_frame

            try:
                while True:
                    request = _recv_frame(sock)
                    if request is None:
                        return
                    if request.get("op") == "hello":
                        _send_frame(sock, hello)
                    # any other op: stall forever (no reply)
            except (OSError, ValueError):
                pass

        def accept_loop(listener):
            while True:
                try:
                    sock, __ = listener.accept()
                except OSError:
                    return
                accepted.append(sock)
                threading.Thread(target=handle, args=(sock,), daemon=True).start()

        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(8)
        thread = threading.Thread(target=accept_loop, args=(listener,), daemon=True)
        thread.start()
        addr = f"127.0.0.1:{listener.getsockname()[1]}"
        try:
            remote = RemoteShardedArchive(
                [addr], timeout_s=0.2, retries=2, backoff_s=0.01
            )
            t0 = time.perf_counter()
            with pytest.raises(ShardTimeoutError) as excinfo:
                remote.points_near(Point(0.0, 0.0), 100.0)
            elapsed = time.perf_counter() - t0
            assert excinfo.value.attempts == 3  # retries + 1, then stop
            assert excinfo.value.op == "search_circles"
            assert elapsed < 5.0  # bounded: ~3 x 0.2s timeouts + backoff
            assert len(accepted) >= 2  # it reconnected between retries
            remote.close()
        finally:
            listener.close()
            for sock in accepted:
                sock.close()

    def test_unreachable_shard_raises_unavailable(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here any more
        with pytest.raises(ShardUnavailableError):
            RemoteShardedArchive(
                [f"127.0.0.1:{port}"], timeout_s=0.2, retries=0, backoff_s=0.01
            )

    def test_inconsistent_fleet_rejected(self):
        # Two servers that each claim a 3-shard deployment, client has 2.
        servers = [ArchiveShardServer(i, 3, TILE).start() for i in range(2)]
        addrs = [f"127.0.0.1:{s.address[1]}" for s in servers]
        try:
            with pytest.raises(ShardProtocolError, match="3-shard deployment"):
                RemoteShardedArchive(addrs)
        finally:
            for server in servers:
                server.stop()

    def test_missing_shard_rejected(self):
        # Two servers for shard 0 form a legal replica set, but shard 1 of
        # the declared 2-shard deployment has no server at all.
        servers = [ArchiveShardServer(0, 2, TILE).start() for __ in range(2)]
        addrs = [f"127.0.0.1:{s.address[1]}" for s in servers]
        try:
            with pytest.raises(ShardProtocolError, match="have no server"):
                RemoteShardedArchive(addrs)
        finally:
            for server in servers:
                server.stop()

    def test_tile_size_mismatch_rejected(self, cluster):
        __, addrs = cluster
        with pytest.raises(ShardProtocolError, match="tile_size"):
            RemoteShardedArchive(addrs, expected_tile_size=TILE + 1.0)

    def test_make_archive_remote_requires_addresses(self):
        with pytest.raises(ValueError, match="shard address"):
            make_archive("remote")

    def test_parse_address_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_address("no-port-here")
        assert parse_address("host:80") == ("host", 80)
        assert parse_address(("h", 80)) == ("h", 80)


class TestLifecycle:
    def test_request_shutdown_stops_server(self):
        server = ArchiveShardServer(0, 1, TILE).start()
        request_shutdown(f"127.0.0.1:{server.address[1]}")
        server._thread.join(timeout=5.0)
        assert not server._thread.is_alive()
        server.stop()  # idempotent after remote shutdown

    def test_prepare_for_fork_drops_connections_then_reconnects(self, cluster):
        __, addrs = cluster
        rng = np.random.default_rng(17)
        mem, remote = matched_archives(rng, addrs, n_trips=6)
        remote.prepare_for_fork()
        q = Point(2_000.0, 2_000.0)  # lazily reconnects
        assert mem.points_near(q, 1_000.0) == remote.points_near(q, 1_000.0)
        remote.close()

    def test_server_validates_construction(self):
        with pytest.raises(ValueError):
            ArchiveShardServer(3, 3, TILE)
        with pytest.raises(ValueError):
            ArchiveShardServer(0, 1, 0.0)


class TestInferenceIdentity:
    def test_hris_bit_identical_via_remote_fleet(self, corridor_world):
        """Acceptance: full HRIS inference is bit-identical whether the
        reference search is served in-process or by the shard fleet."""
        from repro.core.system import HRIS, HRISConfig
        from repro.trajectory.resample import downsample

        servers = [ArchiveShardServer(i, 2, 600.0).start() for i in range(2)]
        addrs = [f"127.0.0.1:{s.address[1]}" for s in servers]
        try:
            remote = convert_archive(corridor_world.archive, "remote", shard_addrs=addrs)
            h_mem = HRIS(corridor_world.network, corridor_world.archive, HRISConfig())
            h_remote = HRIS(corridor_world.network, remote, HRISConfig())
            query = downsample(corridor_world.query, 240.0)
            r_mem = h_mem.infer_routes(query)
            r_remote = h_remote.infer_routes(query)
            assert [(g.route.segment_ids, g.log_score) for g in r_mem] == [
                (g.route.segment_ids, g.log_score) for g in r_remote
            ]
            remote.close()
        finally:
            for server in servers:
                server.stop()
