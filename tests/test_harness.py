"""Unit tests for the experiment harness and report generator."""

import math

import pytest

from repro.eval.harness import (
    ExperimentTable,
    evaluate_accuracy,
    evaluate_accuracy_and_time,
)
from repro.eval.report import build_report, collect_results


class TestExperimentTable:
    def test_record_and_series(self):
        t = ExperimentTable("demo", "x")
        t.record(1, "a", 0.5)
        t.record(2, "a", 0.6)
        t.record(1, "b", 0.7)
        assert t.xs == [1, 2]
        assert t.series_names == ["a", "b"]
        assert t.series("a") == [0.5, 0.6]
        assert t.series("b")[0] == 0.7
        assert math.isnan(t.series("b")[1])

    def test_format_contains_everything(self):
        t = ExperimentTable("My Title", "interval")
        t.record(3, "HRIS", 0.876)
        text = t.format()
        assert "My Title" in text
        assert "interval" in text
        assert "HRIS" in text
        assert "0.876" in text

    def test_format_precision(self):
        t = ExperimentTable("demo", "x")
        t.record(1, "a", 0.123456)
        assert "0.12" in t.format(precision=2)

    def test_save(self, tmp_path):
        t = ExperimentTable("demo", "x")
        t.record(1, "a", 1.0)
        t.save(tmp_path / "sub" / "demo.txt")
        assert (tmp_path / "sub" / "demo.txt").read_text().startswith("== demo ==")

    def test_unknown_series_is_nan(self):
        t = ExperimentTable("demo", "x")
        t.record(1, "a", 1.0)
        assert math.isnan(t.series("zzz")[0])


class TestEvaluators:
    def test_no_evaluable_queries_raises(self, corridor_world):
        from repro.mapmatching import HMMMatcher

        world = corridor_world
        matcher = HMMMatcher(world.network)
        # A huge interval turns every query into <2 points... the helper
        # keeps endpoints, so use an empty case list to force the error.
        with pytest.raises(ValueError):
            evaluate_accuracy(world.network, matcher, [], 60.0)

    def test_accuracy_and_time(self, corridor_world):
        from repro.datasets.synthetic import QueryCase
        from repro.mapmatching import HMMMatcher

        world = corridor_world
        case = QueryCase(query=world.query, truth=world.truth)
        acc, secs = evaluate_accuracy_and_time(
            world.network, HMMMatcher(world.network), [case], 60.0
        )
        assert 0.0 <= acc <= 1.0
        assert secs > 0.0


class TestReport:
    def test_collect_missing_dir(self, tmp_path):
        assert collect_results(tmp_path / "nope") == {}

    def test_collect_and_build(self, tmp_path):
        (tmp_path / "fig8a.txt").write_text("== Fig 8a ==\nrows\n")
        (tmp_path / "custom.txt").write_text("custom table\n")
        results = collect_results(tmp_path)
        assert set(results) == {"fig8a", "custom"}
        report = build_report(results, title="Test run")
        assert report.startswith("# Test run")
        # Known figure renders with its heading, unknown one appended.
        assert "## Fig. 8a — accuracy vs sampling interval" in report
        assert "## custom" in report
        assert report.index("Fig. 8a") < report.index("## custom")

    def test_cli_entry(self, tmp_path, capsys):
        from repro.eval.report import main

        (tmp_path / "fig14a.txt").write_text("table\n")
        out_md = tmp_path / "report.md"
        assert main([str(tmp_path), str(out_md)]) == 0
        assert out_md.exists()
        assert main([str(tmp_path / "empty")]) == 1
        assert main([]) == 2
