"""Unit tests for the GPS trajectory model (Definition 1)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo.point import Point
from repro.trajectory.model import LOW_SAMPLING_THRESHOLD_S, GPSPoint, Trajectory


def traj(coords_times, tid=1):
    return Trajectory.build(
        tid, [GPSPoint(Point(x, y), t) for (x, y, t) in coords_times]
    )


class TestGPSPoint:
    def test_accessors(self):
        p = GPSPoint(Point(1, 2), 10.0)
        assert p.x == 1 and p.y == 2 and p.t == 10.0

    def test_distance(self):
        a = GPSPoint(Point(0, 0), 0.0)
        b = GPSPoint(Point(3, 4), 1.0)
        assert a.distance_to(b) == 5.0

    def test_speed(self):
        a = GPSPoint(Point(0, 0), 0.0)
        b = GPSPoint(Point(100, 0), 10.0)
        assert a.speed_to(b) == 10.0

    def test_speed_simultaneous_raises(self):
        a = GPSPoint(Point(0, 0), 5.0)
        b = GPSPoint(Point(1, 0), 5.0)
        with pytest.raises(ValueError):
            a.speed_to(b)


class TestTrajectoryConstruction:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Trajectory.build(1, [])

    def test_non_monotone_raises(self):
        with pytest.raises(ValueError):
            traj([(0, 0, 0.0), (1, 0, 0.0)])
        with pytest.raises(ValueError):
            traj([(0, 0, 5.0), (1, 0, 1.0)])

    def test_single_point_ok(self):
        t = traj([(0, 0, 0.0)])
        assert len(t) == 1
        assert t.duration == 0.0
        assert t.mean_sampling_interval == 0.0


class TestTrajectoryStats:
    def test_duration(self):
        t = traj([(0, 0, 0.0), (1, 0, 30.0), (2, 0, 90.0)])
        assert t.duration == 90.0

    def test_mean_interval(self):
        t = traj([(0, 0, 0.0), (1, 0, 30.0), (2, 0, 90.0)])
        assert t.mean_sampling_interval == 45.0

    def test_max_interval(self):
        t = traj([(0, 0, 0.0), (1, 0, 30.0), (2, 0, 90.0)])
        assert t.max_sampling_interval == 60.0

    def test_low_sampling_predicate(self):
        fast = traj([(0, 0, 0.0), (1, 0, 30.0)])
        slow = traj([(0, 0, 0.0), (1, 0, 200.0)])
        assert not fast.is_low_sampling_rate()
        assert slow.is_low_sampling_rate()
        assert LOW_SAMPLING_THRESHOLD_S == 120.0

    def test_path_length(self):
        t = traj([(0, 0, 0.0), (3, 0, 1.0), (3, 4, 2.0)])
        assert t.path_length() == 7.0

    def test_bbox(self):
        t = traj([(0, 5, 0.0), (2, -1, 1.0)])
        b = t.bbox()
        assert (b.min_x, b.min_y, b.max_x, b.max_y) == (0, -1, 2, 5)


class TestNearest:
    def test_nearest_index(self):
        t = traj([(0, 0, 0.0), (10, 0, 1.0), (20, 0, 2.0)])
        assert t.nearest_index(Point(11, 1)) == 1
        assert t.nearest_point(Point(19, 0)).x == 20

    def test_nearest_first_wins_ties(self):
        t = traj([(0, 0, 0.0), (10, 0, 1.0)])
        assert t.nearest_index(Point(5, 0)) == 0

    def test_nearest_refines_underflowed_squared_ties(self):
        # Both squared distances underflow to 0.0 (5e-171² < min subnormal),
        # but the true distances differ: the scan must fall back to the
        # unsquared metric instead of letting the earlier index win a
        # tie that only exists because of the underflow.
        t = traj([(0.0, 5e-171, 0.0), (0.0, 0.0, 1.0)])
        assert t.nearest_index(Point(0.0, 0.0)) == 1


class TestSlicing:
    def test_slice_inclusive(self):
        t = traj([(0, 0, 0.0), (1, 0, 1.0), (2, 0, 2.0), (3, 0, 3.0)])
        s = t.slice(1, 2)
        assert len(s) == 2
        assert s[0].x == 1 and s[1].x == 2
        assert s.traj_id == t.traj_id

    def test_slice_reversed_raises(self):
        t = traj([(0, 0, 0.0), (1, 0, 1.0)])
        with pytest.raises(ValueError):
            t.slice(1, 0)

    def test_time_window(self):
        t = traj([(0, 0, 0.0), (1, 0, 10.0), (2, 0, 20.0)])
        w = t.time_window(5.0, 15.0)
        assert w is not None and len(w) == 1 and w[0].x == 1

    def test_time_window_empty_returns_none(self):
        t = traj([(0, 0, 0.0), (1, 0, 10.0)])
        assert t.time_window(100.0, 200.0) is None

    def test_positions(self):
        t = traj([(0, 0, 0.0), (1, 2, 1.0)])
        assert t.positions() == [Point(0, 0), Point(1, 2)]


class TestProperties:
    @given(
        st.lists(
            st.tuples(st.floats(-100, 100), st.floats(-100, 100)),
            min_size=2,
            max_size=20,
        )
    )
    def test_mean_interval_between_min_max(self, coords):
        pts = [GPSPoint(Point(x, y), float(i) * 7.0) for i, (x, y) in enumerate(coords)]
        t = Trajectory.build(1, pts)
        assert t.mean_sampling_interval <= t.max_sampling_interval + 1e-9
        assert math.isclose(t.mean_sampling_interval, 7.0)

    @given(
        st.lists(
            st.tuples(st.floats(-100, 100), st.floats(-100, 100)),
            min_size=1,
            max_size=20,
        ),
        st.tuples(st.floats(-100, 100), st.floats(-100, 100)),
    )
    def test_nearest_is_argmin(self, coords, q):
        pts = [GPSPoint(Point(x, y), float(i)) for i, (x, y) in enumerate(coords)]
        t = Trajectory.build(1, pts)
        query = Point(*q)
        i = t.nearest_index(query)
        best = min(p.point.distance_to(query) for p in pts)
        assert math.isclose(pts[i].point.distance_to(query), best)
