"""Unit tests for repro.geo.bbox."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo.bbox import BBox
from repro.geo.point import Point

coords = st.floats(-1e5, 1e5, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)


def boxes():
    return st.builds(
        lambda a, b: BBox(min(a.x, b.x), min(a.y, b.y), max(a.x, b.x), max(a.y, b.y)),
        points,
        points,
    )


class TestConstruction:
    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            BBox(1, 0, 0, 1)
        with pytest.raises(ValueError):
            BBox(0, 1, 1, 0)

    def test_from_point_zero_area(self):
        b = BBox.from_point(Point(2, 3))
        assert b.area == 0.0
        assert b.contains_point(Point(2, 3))

    def test_from_points(self):
        b = BBox.from_points([Point(0, 5), Point(3, 1), Point(-2, 2)])
        assert (b.min_x, b.min_y, b.max_x, b.max_y) == (-2, 1, 3, 5)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            BBox.from_points([])

    def test_around(self):
        b = BBox.around(Point(0, 0), 10)
        assert b.width == 20 and b.height == 20

    def test_around_negative_radius_raises(self):
        with pytest.raises(ValueError):
            BBox.around(Point(0, 0), -1)


class TestGeometry:
    def test_dimensions(self):
        b = BBox(0, 0, 4, 3)
        assert b.width == 4
        assert b.height == 3
        assert b.area == 12
        assert b.perimeter == 14
        assert b.center == Point(2, 1.5)

    def test_contains_point_boundary(self):
        b = BBox(0, 0, 1, 1)
        assert b.contains_point(Point(0, 0))
        assert b.contains_point(Point(1, 1))
        assert not b.contains_point(Point(1.001, 0.5))

    def test_contains_bbox(self):
        outer = BBox(0, 0, 10, 10)
        assert outer.contains_bbox(BBox(1, 1, 9, 9))
        assert outer.contains_bbox(outer)
        assert not outer.contains_bbox(BBox(5, 5, 11, 9))

    def test_intersects(self):
        a = BBox(0, 0, 2, 2)
        assert a.intersects(BBox(1, 1, 3, 3))
        assert a.intersects(BBox(2, 2, 3, 3))  # touching corner counts
        assert not a.intersects(BBox(2.1, 2.1, 3, 3))

    def test_union(self):
        u = BBox(0, 0, 1, 1).union(BBox(2, 2, 3, 3))
        assert (u.min_x, u.min_y, u.max_x, u.max_y) == (0, 0, 3, 3)

    def test_expand_to_point(self):
        b = BBox(0, 0, 1, 1).expand_to_point(Point(5, -2))
        assert (b.min_x, b.min_y, b.max_x, b.max_y) == (0, -2, 5, 1)

    def test_enlargement(self):
        a = BBox(0, 0, 1, 1)
        assert a.enlargement(BBox(0, 0, 1, 1)) == 0.0
        assert a.enlargement(BBox(0, 0, 2, 1)) == 1.0

    def test_intersection_area(self):
        a = BBox(0, 0, 2, 2)
        assert a.intersection_area(BBox(1, 1, 3, 3)) == 1.0
        assert a.intersection_area(BBox(5, 5, 6, 6)) == 0.0

    def test_min_distance_inside_is_zero(self):
        assert BBox(0, 0, 2, 2).min_distance_to_point(Point(1, 1)) == 0.0

    def test_min_distance_outside(self):
        assert BBox(0, 0, 1, 1).min_distance_to_point(Point(4, 5)) == 5.0


class TestBBoxProperties:
    @given(boxes(), boxes())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_bbox(a)
        assert u.contains_bbox(b)

    @given(boxes(), boxes())
    def test_intersects_symmetry(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(boxes(), points)
    def test_min_distance_bound(self, b, p):
        # mindist is a lower bound on the distance to any contained point.
        d = b.min_distance_to_point(p)
        assert d <= p.distance_to(b.center) + 1e-6

    @given(boxes(), boxes())
    def test_enlargement_nonnegative(self, a, b):
        assert a.enlargement(b) >= -1e-9

    @given(boxes(), points)
    def test_contains_iff_mindist_zero(self, b, p):
        assert b.contains_point(p) == (b.min_distance_to_point(p) == 0.0)
