"""Unit tests for repro.geo.point."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo.point import Point, centroid, euclidean, midpoint, squared_distance

coords = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)


class TestPointBasics:
    def test_distance_to_self_is_zero(self):
        p = Point(3.0, 4.0)
        assert p.distance_to(p) == 0.0

    def test_distance_345(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_squared_distance(self):
        assert Point(0, 0).squared_distance_to(Point(3, 4)) == 25.0

    def test_translate(self):
        assert Point(1, 2).translate(10, -2) == Point(11, 0)

    def test_add_sub(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)
        assert Point(3, 4) - Point(1, 2) == Point(2, 2)

    def test_scalar_multiplication(self):
        assert Point(1, 2) * 3 == Point(3, 6)
        assert 3 * Point(1, 2) == Point(3, 6)

    def test_dot(self):
        assert Point(1, 2).dot(Point(3, 4)) == 11.0

    def test_cross_sign(self):
        # Counterclockwise turn has positive cross product.
        assert Point(1, 0).cross(Point(0, 1)) > 0
        assert Point(0, 1).cross(Point(1, 0)) < 0

    def test_norm(self):
        assert Point(3, 4).norm() == 5.0

    def test_normalized(self):
        n = Point(3, 4).normalized()
        assert math.isclose(n.norm(), 1.0)
        assert math.isclose(n.x, 0.6)

    def test_normalized_zero_raises(self):
        with pytest.raises(ValueError):
            Point(0, 0).normalized()

    def test_as_tuple_and_iter(self):
        p = Point(1.5, 2.5)
        assert p.as_tuple() == (1.5, 2.5)
        assert list(p) == [1.5, 2.5]

    def test_immutable(self):
        p = Point(1, 2)
        with pytest.raises(AttributeError):
            p.x = 5  # type: ignore[misc]

    def test_hashable(self):
        assert len({Point(1, 2), Point(1, 2), Point(2, 1)}) == 2


class TestModuleFunctions:
    def test_euclidean_matches_method(self):
        a, b = Point(1, 1), Point(4, 5)
        assert euclidean(a, b) == a.distance_to(b) == 5.0

    def test_squared_distance_function(self):
        assert squared_distance(Point(0, 0), Point(1, 1)) == 2.0

    def test_midpoint(self):
        assert midpoint(Point(0, 0), Point(2, 4)) == Point(1, 2)

    def test_centroid(self):
        c = centroid([Point(0, 0), Point(2, 0), Point(1, 3)])
        assert math.isclose(c.x, 1.0)
        assert math.isclose(c.y, 1.0)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_centroid_accepts_generator(self):
        c = centroid(Point(float(i), 0.0) for i in range(3))
        assert math.isclose(c.x, 1.0)


class TestPointProperties:
    @given(points, points)
    def test_distance_symmetry(self, a, b):
        assert math.isclose(a.distance_to(b), b.distance_to(a), abs_tol=1e-9)

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6

    @given(points, points)
    def test_squared_distance_consistent(self, a, b):
        assert math.isclose(
            a.squared_distance_to(b), a.distance_to(b) ** 2, rel_tol=1e-9, abs_tol=1e-9
        )

    @given(points)
    def test_distance_nonnegative(self, p):
        assert p.distance_to(Point(0, 0)) >= 0.0

    @given(points, points)
    def test_midpoint_equidistant(self, a, b):
        m = midpoint(a, b)
        assert math.isclose(m.distance_to(a), m.distance_to(b), rel_tol=1e-6, abs_tol=1e-6)
