"""Unit tests for the reference-trajectory search (Definitions 6 and 7)."""

import math

import pytest

from repro.core.archive import TrajectoryArchive
from repro.core.reference import (
    ReferenceSearch,
    ReferenceSearchConfig,
    movement_direction,
    reference_traversed_segments,
)
from repro.geo.point import Point
from repro.roadnet.generators import manhattan_line
from repro.trajectory.model import GPSPoint, Trajectory


def traj(coords_times, tid=0):
    return Trajectory.build(
        tid, [GPSPoint(Point(x, y), t) for (x, y, t) in coords_times]
    )


@pytest.fixture()
def line():
    # 10 nodes, 200 m apart, along y = 0; local speed ~8.33 m/s.
    return manhattan_line(n_nodes=10, spacing=200.0)


def query_pair(x0=0.0, x1=1000.0, dt=600.0):
    return GPSPoint(Point(x0, 0.0), 0.0), GPSPoint(Point(x1, 0.0), dt)


def corridor_trajectory(offset_y=10.0, spacing=100.0, n=19, t0=0.0, dt=20.0):
    """A trajectory driving east along the corridor."""
    return [(i * spacing, offset_y, t0 + i * dt) for i in range(n)]


class TestSimpleReferences:
    def test_basic_match(self, line):
        archive = TrajectoryArchive.from_trips([traj(corridor_trajectory())])
        search = ReferenceSearch(archive, line, ReferenceSearchConfig(phi=300.0))
        qi, qi1 = query_pair()
        refs = search.search(qi, qi1)
        assert len(refs) == 1
        assert not refs[0].spliced
        assert refs[0].source_ids == (0,)

    def test_subtrajectory_anchored_at_nearest_points(self, line):
        archive = TrajectoryArchive.from_trips([traj(corridor_trajectory())])
        search = ReferenceSearch(archive, line, ReferenceSearchConfig(phi=300.0))
        qi, qi1 = query_pair()
        ref = search.search(qi, qi1)[0]
        # nn(q_i) is the point at x=0, nn(q_{i+1}) at x=1000.
        assert ref.points[0].distance_to(qi.point) <= 50.0
        assert ref.points[-1].distance_to(qi1.point) <= 50.0

    def test_too_far_rejected(self, line):
        # Trajectory 600 m north of the corridor: outside phi = 300.
        archive = TrajectoryArchive.from_trips(
            [traj(corridor_trajectory(offset_y=600.0))]
        )
        search = ReferenceSearch(
            archive, line, ReferenceSearchConfig(phi=300.0, enable_splicing=False)
        )
        qi, qi1 = query_pair()
        assert search.search(qi, qi1) == []

    def test_wrong_direction_rejected(self, line):
        # Trajectory travelling west (from q_{i+1} towards q_i).
        pts = [(1800.0 - i * 100.0, 10.0, i * 20.0) for i in range(19)]
        archive = TrajectoryArchive.from_trips([traj(pts)])
        search = ReferenceSearch(
            archive, line, ReferenceSearchConfig(phi=300.0, enable_splicing=False)
        )
        qi, qi1 = query_pair()
        assert search.search(qi, qi1) == []

    def test_speed_ellipse_condition(self, line):
        # A reference that detours 3 km north violates condition 3 when the
        # query's time budget is tight.
        pts = (
            [(0.0, 0.0, 0.0)]
            + [(500.0, 3000.0, 60.0)]
            + [(1000.0, 0.0, 120.0)]
        )
        archive = TrajectoryArchive.from_trips([traj(pts)])
        search = ReferenceSearch(
            archive, line, ReferenceSearchConfig(phi=300.0, enable_splicing=False)
        )
        # Budget: dt * Vmax = 120 s * 8.33 = 1000 m < required detour.
        qi = GPSPoint(Point(0, 0), 0.0)
        qi1 = GPSPoint(Point(1000, 0), 120.0)
        assert search.search(qi, qi1) == []
        # With a generous budget the same trajectory qualifies.
        qi1_slow = GPSPoint(Point(1000, 0), 2000.0)
        assert len(search.search(qi, qi1_slow)) == 1

    def test_temporal_order_required(self, line):
        archive = TrajectoryArchive()
        search = ReferenceSearch(archive, line)
        with pytest.raises(ValueError):
            search.search(GPSPoint(Point(0, 0), 10.0), GPSPoint(Point(1, 0), 5.0))

    def test_max_references_cap(self, line):
        trips = [
            traj(corridor_trajectory(offset_y=float(k)), tid=k) for k in range(30)
        ]
        archive = TrajectoryArchive.from_trips(trips)
        search = ReferenceSearch(
            archive, line, ReferenceSearchConfig(phi=300.0, max_references=10)
        )
        qi, qi1 = query_pair()
        refs = search.search(qi, qi1)
        assert len(refs) == 10
        # Re-idded contiguously.
        assert sorted(r.ref_id for r in refs) == list(range(10))


class TestSplicedReferences:
    def test_splice_formed(self, line):
        # T_a covers the first 60% of the corridor, T_b the last 60%; they
        # overlap in the middle, neither is a simple reference.
        t_a = traj([(i * 100.0, 10.0, i * 20.0) for i in range(7)], tid=0)
        t_b = traj([(400.0 + i * 100.0, -10.0, i * 20.0) for i in range(7)], tid=1)
        archive = TrajectoryArchive.from_trips([t_a, t_b])
        search = ReferenceSearch(
            archive,
            line,
            ReferenceSearchConfig(phi=150.0, splice_epsilon=150.0),
        )
        qi, qi1 = query_pair(0.0, 1000.0, dt=600.0)
        refs = search.search(qi, qi1)
        spliced = [r for r in refs if r.spliced]
        assert len(spliced) == 1
        assert set(spliced[0].source_ids) == {0, 1}
        # The splice runs from near q_i to near q_{i+1}.
        assert spliced[0].points[0].distance_to(qi.point) <= 150.0
        assert spliced[0].points[-1].distance_to(qi1.point) <= 150.0

    def test_no_splice_when_gap_too_wide(self, line):
        t_a = traj([(i * 100.0, 10.0, i * 20.0) for i in range(4)], tid=0)  # to x=300
        t_b = traj([(700.0 + i * 100.0, -10.0, i * 20.0) for i in range(4)], tid=1)
        archive = TrajectoryArchive.from_trips([t_a, t_b])
        search = ReferenceSearch(
            archive,
            line,
            ReferenceSearchConfig(phi=150.0, splice_epsilon=100.0),
        )
        qi, qi1 = query_pair(0.0, 1000.0, dt=600.0)
        assert [r for r in search.search(qi, qi1) if r.spliced] == []

    def test_splicing_disabled(self, line):
        t_a = traj([(i * 100.0, 10.0, i * 20.0) for i in range(7)], tid=0)
        t_b = traj([(400.0 + i * 100.0, -10.0, i * 20.0) for i in range(7)], tid=1)
        archive = TrajectoryArchive.from_trips([t_a, t_b])
        search = ReferenceSearch(
            archive,
            line,
            ReferenceSearchConfig(phi=150.0, enable_splicing=False),
        )
        qi, qi1 = query_pair()
        assert search.search(qi, qi1) == []

    def test_simple_reference_not_duplicated_as_splice(self, line):
        archive = TrajectoryArchive.from_trips([traj(corridor_trajectory())])
        search = ReferenceSearch(archive, line, ReferenceSearchConfig(phi=300.0))
        qi, qi1 = query_pair()
        refs = search.search(qi, qi1)
        assert len(refs) == 1 and not refs[0].spliced


class TestReferencePoints:
    def test_flatten(self, line):
        archive = TrajectoryArchive.from_trips([traj(corridor_trajectory())])
        search = ReferenceSearch(archive, line, ReferenceSearchConfig(phi=300.0))
        qi, qi1 = query_pair()
        refs = search.search(qi, qi1)
        pool = search.reference_points(refs)
        assert len(pool) == len(refs[0].points)
        assert all(rp.ref_id == refs[0].ref_id for rp in pool)
        assert [rp.seq for rp in pool] == list(range(len(pool)))


class TestDirectionHelpers:
    def test_movement_direction_interior(self):
        pts = [Point(0, 0), Point(10, 0), Point(20, 10)]
        d = movement_direction(pts, 1)
        assert d == Point(20, 10)

    def test_movement_direction_endpoints(self):
        pts = [Point(0, 0), Point(10, 0)]
        assert movement_direction(pts, 0) == Point(10, 0)
        assert movement_direction(pts, 1) == Point(10, 0)

    def test_movement_direction_singleton_is_zero(self):
        assert movement_direction([Point(1, 1)], 0) == Point(0, 0)

    def test_traversed_segments_directional(self, line):
        # An eastbound reference only supports eastbound segments.
        archive = TrajectoryArchive.from_trips([traj(corridor_trajectory())])
        search = ReferenceSearch(archive, line, ReferenceSearchConfig(phi=300.0))
        qi, qi1 = query_pair()
        ref = search.search(qi, qi1)[0]
        segs = reference_traversed_segments(line, ref, 50.0)
        assert segs
        for sid in segs:
            seg = line.segment(sid)
            direction = seg.polyline[-1] - seg.polyline[0]
            assert direction.x > 0  # eastbound only
