"""DistanceTableOracle: batched sweeps must be invisible except in stats.

The table oracle is a drop-in for the per-pair :class:`DistanceOracle`:
every distance it serves — prepared, lazily resumed, or answered by the
bidirectional fallback — must be float-identical to the per-pair value,
and every matcher run through an engine configured with it must return
the exact same match as a matcher with no engine at all.
"""

import math

import numpy as np
import pytest

from repro.mapmatching import (
    HMMConfig,
    HMMMatcher,
    IncrementalConfig,
    IncrementalMatcher,
    IVMMConfig,
    IVMMMatcher,
    STMatcher,
    STMatchingConfig,
)
from repro.roadnet.engine import EngineConfig, RoutingEngine
from repro.roadnet.generators import GridCityConfig, grid_city, manhattan_line
from repro.roadnet.shortest_path import (
    DistanceOracle,
    LandmarkIndex,
    shortest_route_between_nodes,
)
from repro.roadnet.table_oracle import DistanceTableOracle
from repro.trajectory.simulate import DriveConfig, drive_route


@pytest.fixture(scope="module")
def city():
    return grid_city(
        GridCityConfig(nx=9, ny=9, drop_fraction=0.1, one_way_fraction=0.15),
        np.random.default_rng(23),
    )


@pytest.fixture(scope="module")
def node_ids(city):
    return sorted(n.node_id for n in city.nodes())


class TestDistanceIdentity:
    def test_prepared_pairs_match_per_pair_oracle(self, city, node_ids):
        per_pair = DistanceOracle(city, max_distance=3_000.0)
        table = DistanceTableOracle(city, max_distance=3_000.0)
        sources = node_ids[::9]
        targets = node_ids[3::11]
        table.prepare(sources, targets)
        for s in sources:
            for t in targets:
                assert table.distance(s, t) == per_pair.distance(s, t)

    def test_lazy_resume_for_uncovered_target(self, city, node_ids):
        """A target the prepared sweep never reached resumes the same row
        and still reads the exact dijkstra_all value."""
        per_pair = DistanceOracle(city)
        table = DistanceTableOracle(city)
        s = node_ids[0]
        near = min(
            (t for t in node_ids if t != s),
            key=lambda t: per_pair.distance(s, t),
        )
        far = max(node_ids, key=lambda t: per_pair.distance(s, t))
        table.prepare([s], [near])
        sweeps_before = table.sweeps
        row = table.table(s)
        assert row.get(far) == per_pair.distance(s, far)
        assert table.sweeps == sweeps_before + 1  # resumed, not restarted

    def test_prepare_settles_fewer_nodes_than_full_tables(self, city, node_ids):
        """The reason this class exists: covering a frontier product must
        cost far less settling than building each source's full table."""
        per_pair = DistanceOracle(city)
        table = DistanceTableOracle(city)
        sources = node_ids[:4]
        targets = node_ids[5:9]  # a nearby frontier, as in a Viterbi step
        table.prepare(sources, targets)
        for s in sources:
            per_pair.table(s)
        assert table.settled_nodes < per_pair.settled_nodes

    def test_unreachable_within_bound_reads_inf(self):
        line = manhattan_line(n_nodes=6, spacing=100.0)
        table = DistanceTableOracle(line, max_distance=150.0)
        table.prepare([0], [5])
        assert math.isinf(table.distance(0, 5))
        assert table.distance(0, 1) == 100.0

    def test_fallback_matches_and_counts(self, city, node_ids):
        """A pair with no prepared row is answered by one bidirectional
        search — exact, counted, and without evicting prepared rows."""
        per_pair = DistanceOracle(city)
        table = DistanceTableOracle(city, max_rows=2)
        table.prepare([node_ids[0], node_ids[1]], [node_ids[10]])
        s, t = node_ids[40], node_ids[70]
        assert table.fallbacks == 0
        assert table.distance(s, t) == per_pair.distance(s, t)
        assert table.fallbacks == 1
        # The fallback did not displace the prepared rows.
        assert table.stats.evictions == 0

    def test_row_view_mapping_protocol(self, city, node_ids):
        per_pair = DistanceOracle(city)
        table = DistanceTableOracle(city)
        s, t = node_ids[2], node_ids[60]
        view = table.table(s)
        assert t in view
        assert view[t] == per_pair.distance(s, t)
        with pytest.raises(KeyError):
            view[999_999]


class TestProjectionParity:
    @pytest.fixture(scope="class")
    def line(self):
        return manhattan_line(n_nodes=6, spacing=100.0)

    def test_same_segment_forward(self, line):
        table = DistanceTableOracle(line)
        assert table.route_distance_between_projections(0, 10.0, 0, 60.0) == 50.0

    def test_cross_segment_matches_per_pair(self, line):
        per_pair = DistanceOracle(line)
        table = DistanceTableOracle(line)
        for args in [(0, 50.0, 2, 25.0), (0, 60.0, 0, 10.0), (0, 0.0, 6, 30.0)]:
            assert table.route_distance_between_projections(
                *args
            ) == per_pair.route_distance_between_projections(*args)


class TestLifecycle:
    def test_lru_eviction(self, city, node_ids):
        table = DistanceTableOracle(city, max_rows=2)
        table.prepare(node_ids[:3], [node_ids[20]])  # third row evicts first
        assert table.stats.evictions == 1

    def test_prepare_for_fork_seals_and_resumes(self, city, node_ids):
        per_pair = DistanceOracle(city)
        table = DistanceTableOracle(city)
        s = node_ids[0]
        table.prepare([s], [node_ids[5]])
        table.prepare_for_fork()
        row = table._rows.get(s)
        assert isinstance(row.heap, tuple)
        # A post-fork read resumes the sealed heap and stays exact.
        far = node_ids[-1]
        assert table.table(s).get(far, math.inf) == per_pair.distance(s, far)

    def test_clear_drops_rows(self, city, node_ids):
        table = DistanceTableOracle(city)
        table.prepare([node_ids[0]], [node_ids[5]])
        table.clear()
        assert table.distance(node_ids[0], node_ids[5]) >= 0.0


class TestMatcherIdentity:
    """Every matcher must match identically with the table oracle on."""

    @pytest.fixture(scope="class")
    def trajectory(self, city):
        __, route = shortest_route_between_nodes(city, 0, 80)
        drive = drive_route(
            city,
            route,
            traj_id=1,
            config=DriveConfig(sample_interval_s=20.0, gps_sigma_m=10.0),
            rng=np.random.default_rng(3),
        )
        return drive.trajectory

    @pytest.fixture(scope="class")
    def table_engine(self, city):
        return RoutingEngine(
            city, EngineConfig(transition_oracle="table", bidirectional=True)
        )

    @pytest.mark.parametrize(
        "factory",
        [
            lambda net, eng: HMMMatcher(net, HMMConfig(), engine=eng),
            lambda net, eng: IVMMMatcher(net, IVMMConfig(), engine=eng),
            lambda net, eng: STMatcher(net, STMatchingConfig(), engine=eng),
            lambda net, eng: IncrementalMatcher(net, IncrementalConfig(), engine=eng),
        ],
        ids=["hmm", "ivmm", "st", "incremental"],
    )
    def test_engine_table_matches_no_engine(
        self, city, trajectory, table_engine, factory
    ):
        plain = factory(city, None).match(trajectory)
        tabled = factory(city, table_engine).match(trajectory)
        assert tabled.route.segment_ids == plain.route.segment_ids
        assert [
            None if c is None else c.segment.segment_id for c in tabled.matched
        ] == [None if c is None else c.segment.segment_id for c in plain.matched]

    def test_engine_stats_show_oracle_traffic(self, city, trajectory, table_engine):
        stats = table_engine.stats()
        assert stats.oracle.hits > 0  # the seed engine reported zeros here
        assert stats.sweeps > 0
        assert stats.settled_nodes > 0


class TestEngineConfigValidation:
    def test_unknown_oracle_kind_rejected(self, city):
        with pytest.raises(ValueError):
            EngineConfig(transition_oracle="magic")

    def test_incremental_bound_lifted_into_config(self, city):
        cfg = IncrementalConfig(max_route_distance=1_234.0)
        matcher = IncrementalMatcher(city, cfg)
        assert matcher._oracle._max_distance == 1_234.0
