"""End-to-end tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def world_dir(tmp_path_factory):
    path = tmp_path_factory.mktemp("world")
    code = main(
        [
            "generate",
            "--out",
            str(path),
            "--seed",
            "5",
            "--grid",
            "8",
            "--od-pairs",
            "3",
            "--trips",
            "30",
            "--queries",
            "2",
        ]
    )
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "--out", "x"])
        assert args.seed == 42
        assert args.grid == 14

    def test_infer_method_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["infer", "--world", "x", "--method", "bogus"]
            )

    def test_archive_serve_replica_of_parses(self):
        args = build_parser().parse_args(
            ["archive-serve", "--replica-of", "1", "--num-shards", "2",
             "--replica-id", "3"]
        )
        assert args.shard_index is None
        assert args.replica_of == 1
        assert args.replica_id == 3


class TestCommands:
    def test_generate_creates_artifacts(self, world_dir):
        assert (world_dir / "network.json").exists()
        assert (world_dir / "archive.jsonl").exists()
        assert (world_dir / "queries.json").exists()

    def test_infer_prints_routes(self, world_dir, capsys):
        code = main(
            [
                "infer",
                "--world",
                str(world_dir),
                "--query",
                "0",
                "--interval",
                "240",
                "--k",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "#1:" in out
        assert "log-score" in out

    def test_infer_bad_query_index(self, world_dir, capsys):
        code = main(
            ["infer", "--world", str(world_dir), "--query", "99"]
        )
        assert code == 2
        assert "out of range" in capsys.readouterr().err

    def test_infer_forced_method(self, world_dir, capsys):
        code = main(
            [
                "infer",
                "--world",
                str(world_dir),
                "--query",
                "0",
                "--method",
                "tgi",
            ]
        )
        assert code == 0

    def test_evaluate_prints_table(self, world_dir, capsys):
        code = main(
            ["evaluate", "--world", str(world_dir), "--intervals", "240", "600"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "HRIS" in out
        assert "ST-matching" in out

    def test_infer_sharded_backend_matches_memory(self, world_dir, capsys):
        args = ["infer", "--world", str(world_dir), "--query", "0", "--interval", "240"]
        def route_lines(text):
            return [line for line in text.splitlines() if "log-score" in line]

        assert main(args) == 0
        out_memory = capsys.readouterr().out
        assert main(args + ["--archive-backend", "sharded", "--tile-size", "700"]) == 0
        out_sharded = capsys.readouterr().out
        # Identical routes, scores and accuracies from both backends (the
        # header line carries wall-clock time, so compare the route lines).
        assert route_lines(out_sharded) == route_lines(out_memory)
        assert route_lines(out_memory)

    def test_infer_remote_backend_matches_memory(self, world_dir, capsys):
        """archive-serve + infer --archive-backend remote: same routes as
        the in-process backend, over real loopback shard processes."""
        import threading

        from repro.core.remote import request_shutdown
        from repro.core.remote import ArchiveShardServer

        # Pre-pick ephemeral ports by starting the servers in-process; the
        # CLI path itself is exercised through _cmd_archive_serve's
        # building blocks (serve_forever on the CLI thread is covered by
        # driving the same server class the subcommand constructs).
        servers = [ArchiveShardServer(i, 2, 700.0) for i in range(2)]
        threads = [
            threading.Thread(target=s.serve_forever, daemon=True) for s in servers
        ]
        for t in threads:
            t.start()
        addrs = [f"127.0.0.1:{s.address[1]}" for s in servers]
        try:
            args = [
                "infer", "--world", str(world_dir), "--query", "0",
                "--interval", "240",
            ]
            def route_lines(text):
                return [line for line in text.splitlines() if "log-score" in line]

            assert main(args) == 0
            out_memory = capsys.readouterr().out
            remote_args = args + [
                "--archive-backend", "remote", "--tile-size", "700",
                "--shard-addr", addrs[0], "--shard-addr", addrs[1],
            ]
            assert main(remote_args) == 0
            out_remote = capsys.readouterr().out
            assert route_lines(out_remote) == route_lines(out_memory)
            assert route_lines(out_memory)
        finally:
            for addr in addrs:
                request_shutdown(addr)
            for s in servers:
                s._server.server_close()
            for t in threads:
                t.join(timeout=5.0)

    def test_infer_remote_backend_requires_addresses(self, world_dir, capsys):
        code = main(
            [
                "infer", "--world", str(world_dir), "--query", "0",
                "--archive-backend", "remote",
            ]
        )
        assert code == 2
        assert "--shard-addr" in capsys.readouterr().err

    def test_shard_addr_without_remote_backend_rejected(self, world_dir, capsys):
        code = main(
            [
                "infer", "--world", str(world_dir), "--query", "0",
                "--shard-addr", "127.0.0.1:1",
            ]
        )
        assert code == 2
        assert "remote" in capsys.readouterr().err

    def test_infer_unreachable_shard_reports_remote_error(self, world_dir, capsys):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        code = main(
            [
                "infer", "--world", str(world_dir), "--query", "0",
                "--archive-backend", "remote",
                "--shard-addr", f"127.0.0.1:{port}",
            ]
        )
        assert code == 3
        assert "unavailable" in capsys.readouterr().err

    def test_archive_serve_parser_defaults(self):
        args = build_parser().parse_args(
            ["archive-serve", "--shard-index", "0", "--num-shards", "2"]
        )
        assert args.port == 0
        assert args.host == "127.0.0.1"
        assert args.replica_id == 0

    def test_archive_serve_requires_exactly_one_identity(self, capsys):
        assert main(["archive-serve", "--num-shards", "2"]) == 2
        assert "--shard-index or --replica-of" in capsys.readouterr().err
        assert (
            main(
                ["archive-serve", "--shard-index", "0", "--replica-of", "0",
                 "--num-shards", "2"]
            )
            == 2
        )
        assert "--shard-index or --replica-of" in capsys.readouterr().err

    def test_replication_without_remote_backend_rejected(self, world_dir, capsys):
        code = main(
            ["infer", "--world", str(world_dir), "--query", "0",
             "--replication", "2"]
        )
        assert code == 2
        assert "remote" in capsys.readouterr().err

    def test_infer_replicated_fleet_matches_memory(self, world_dir, capsys):
        """R=2 loopback fleet behind --replication 2: identical routes."""
        from repro.core.remote import ArchiveShardServer

        servers = [
            ArchiveShardServer(i, 2, 700.0, replica_id=r).start()
            for i in range(2)
            for r in range(2)
        ]
        addrs = [f"127.0.0.1:{s.address[1]}" for s in servers]
        try:
            args = [
                "infer", "--world", str(world_dir), "--query", "0",
                "--interval", "240",
            ]

            def route_lines(text):
                return [line for line in text.splitlines() if "log-score" in line]

            assert main(args) == 0
            out_memory = capsys.readouterr().out
            remote_args = args + [
                "--archive-backend", "remote", "--tile-size", "700",
                "--replication", "2",
            ]
            for addr in addrs:
                remote_args += ["--shard-addr", addr]
            assert main(remote_args) == 0
            out_remote = capsys.readouterr().out
            assert route_lines(out_remote) == route_lines(out_memory)
            assert route_lines(out_memory)
        finally:
            for s in servers:
                s.stop()

    def test_infer_persists_and_reuses_landmarks(self, world_dir, capsys):
        import json

        args = ["infer", "--world", str(world_dir), "--query", "0"]
        assert main(args) == 0
        cache = world_dir / "landmarks.json"
        assert cache.exists()
        payload = json.loads(cache.read_text(encoding="utf-8"))
        assert payload["format"] == "repro-landmarks-v1"
        stamp = cache.stat().st_mtime_ns
        capsys.readouterr()
        assert main(args) == 0  # second run reuses the cache
        assert cache.stat().st_mtime_ns == stamp

    def test_infer_landmark_cache_opt_out(self, world_dir, tmp_path, capsys):
        import shutil

        world = tmp_path / "world-nocache"
        shutil.copytree(world_dir, world)
        (world / "landmarks.json").unlink(missing_ok=True)
        assert (
            main(
                [
                    "infer",
                    "--world",
                    str(world),
                    "--query",
                    "0",
                    "--no-landmark-cache",
                ]
            )
            == 0
        )
        assert not (world / "landmarks.json").exists()
