"""End-to-end tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def world_dir(tmp_path_factory):
    path = tmp_path_factory.mktemp("world")
    code = main(
        [
            "generate",
            "--out",
            str(path),
            "--seed",
            "5",
            "--grid",
            "8",
            "--od-pairs",
            "3",
            "--trips",
            "30",
            "--queries",
            "2",
        ]
    )
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "--out", "x"])
        assert args.seed == 42
        assert args.grid == 14

    def test_infer_method_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["infer", "--world", "x", "--method", "bogus"]
            )

    def test_archive_serve_replica_of_parses(self):
        args = build_parser().parse_args(
            ["archive-serve", "--replica-of", "1", "--num-shards", "2",
             "--replica-id", "3"]
        )
        assert args.shard_index is None
        assert args.replica_of == 1
        assert args.replica_id == 3

    def test_archive_serve_wal_flags_parse(self):
        args = build_parser().parse_args(
            ["archive-serve", "--shard-index", "0", "--num-shards", "1",
             "--wal-dir", "wal0", "--fsync", "interval",
             "--fsync-interval", "0.2", "--compact-every", "128"]
        )
        assert args.wal_dir == "wal0"
        assert args.fsync == "interval"
        assert args.fsync_interval == 0.2
        assert args.compact_every == 128

    def test_archive_serve_defaults_to_always_fsync_no_wal(self):
        args = build_parser().parse_args(
            ["archive-serve", "--shard-index", "0", "--num-shards", "1"]
        )
        assert args.wal_dir is None
        assert args.fsync == "always"
        assert args.compact_every is None

    def test_archive_serve_fsync_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["archive-serve", "--shard-index", "0", "--num-shards", "1",
                 "--fsync", "sometimes"]
            )


class TestCommands:
    def test_generate_creates_artifacts(self, world_dir):
        assert (world_dir / "network.json").exists()
        assert (world_dir / "archive.jsonl").exists()
        assert (world_dir / "queries.json").exists()

    def test_infer_prints_routes(self, world_dir, capsys):
        code = main(
            [
                "infer",
                "--world",
                str(world_dir),
                "--query",
                "0",
                "--interval",
                "240",
                "--k",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "#1:" in out
        assert "log-score" in out

    def test_infer_bad_query_index(self, world_dir, capsys):
        code = main(
            ["infer", "--world", str(world_dir), "--query", "99"]
        )
        assert code == 2
        assert "out of range" in capsys.readouterr().err

    def test_infer_forced_method(self, world_dir, capsys):
        code = main(
            [
                "infer",
                "--world",
                str(world_dir),
                "--query",
                "0",
                "--method",
                "tgi",
            ]
        )
        assert code == 0

    def test_evaluate_prints_table(self, world_dir, capsys):
        code = main(
            ["evaluate", "--world", str(world_dir), "--intervals", "240", "600"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "HRIS" in out
        assert "ST-matching" in out

    def test_infer_sharded_backend_matches_memory(self, world_dir, capsys):
        args = ["infer", "--world", str(world_dir), "--query", "0", "--interval", "240"]
        def route_lines(text):
            return [line for line in text.splitlines() if "log-score" in line]

        assert main(args) == 0
        out_memory = capsys.readouterr().out
        assert main(args + ["--archive-backend", "sharded", "--tile-size", "700"]) == 0
        out_sharded = capsys.readouterr().out
        # Identical routes, scores and accuracies from both backends (the
        # header line carries wall-clock time, so compare the route lines).
        assert route_lines(out_sharded) == route_lines(out_memory)
        assert route_lines(out_memory)

    def test_infer_remote_backend_matches_memory(self, world_dir, capsys):
        """archive-serve + infer --archive-backend remote: same routes as
        the in-process backend, over real loopback shard processes."""
        import threading

        from repro.core.remote import request_shutdown
        from repro.core.remote import ArchiveShardServer

        # Pre-pick ephemeral ports by starting the servers in-process; the
        # CLI path itself is exercised through _cmd_archive_serve's
        # building blocks (serve_forever on the CLI thread is covered by
        # driving the same server class the subcommand constructs).
        servers = [ArchiveShardServer(i, 2, 700.0) for i in range(2)]
        threads = [
            threading.Thread(target=s.serve_forever, daemon=True) for s in servers
        ]
        for t in threads:
            t.start()
        addrs = [f"127.0.0.1:{s.address[1]}" for s in servers]
        try:
            args = [
                "infer", "--world", str(world_dir), "--query", "0",
                "--interval", "240",
            ]
            def route_lines(text):
                return [line for line in text.splitlines() if "log-score" in line]

            assert main(args) == 0
            out_memory = capsys.readouterr().out
            remote_args = args + [
                "--archive-backend", "remote", "--tile-size", "700",
                "--shard-addr", addrs[0], "--shard-addr", addrs[1],
            ]
            assert main(remote_args) == 0
            out_remote = capsys.readouterr().out
            assert route_lines(out_remote) == route_lines(out_memory)
            assert route_lines(out_memory)
        finally:
            for addr in addrs:
                request_shutdown(addr)
            for s in servers:
                s._server.server_close()
            for t in threads:
                t.join(timeout=5.0)

    def test_infer_remote_backend_requires_addresses(self, world_dir, capsys):
        code = main(
            [
                "infer", "--world", str(world_dir), "--query", "0",
                "--archive-backend", "remote",
            ]
        )
        assert code == 2
        assert "--shard-addr" in capsys.readouterr().err

    def test_shard_addr_without_remote_backend_rejected(self, world_dir, capsys):
        code = main(
            [
                "infer", "--world", str(world_dir), "--query", "0",
                "--shard-addr", "127.0.0.1:1",
            ]
        )
        assert code == 2
        assert "remote" in capsys.readouterr().err

    def test_infer_unreachable_shard_reports_remote_error(self, world_dir, capsys):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        code = main(
            [
                "infer", "--world", str(world_dir), "--query", "0",
                "--archive-backend", "remote",
                "--shard-addr", f"127.0.0.1:{port}",
            ]
        )
        assert code == 3
        assert "unavailable" in capsys.readouterr().err

    def test_archive_serve_parser_defaults(self):
        args = build_parser().parse_args(
            ["archive-serve", "--shard-index", "0", "--num-shards", "2"]
        )
        assert args.port == 0
        assert args.host == "127.0.0.1"
        assert args.replica_id == 0

    def test_archive_serve_requires_exactly_one_identity(self, capsys):
        assert main(["archive-serve", "--num-shards", "2"]) == 2
        assert "--shard-index or --replica-of" in capsys.readouterr().err
        assert (
            main(
                ["archive-serve", "--shard-index", "0", "--replica-of", "0",
                 "--num-shards", "2"]
            )
            == 2
        )
        assert "--shard-index or --replica-of" in capsys.readouterr().err

    def test_replication_without_remote_backend_rejected(self, world_dir, capsys):
        code = main(
            ["infer", "--world", str(world_dir), "--query", "0",
             "--replication", "2"]
        )
        assert code == 2
        assert "remote" in capsys.readouterr().err

    def test_infer_replicated_fleet_matches_memory(self, world_dir, capsys):
        """R=2 loopback fleet behind --replication 2: identical routes."""
        from repro.core.remote import ArchiveShardServer

        servers = [
            ArchiveShardServer(i, 2, 700.0, replica_id=r).start()
            for i in range(2)
            for r in range(2)
        ]
        addrs = [f"127.0.0.1:{s.address[1]}" for s in servers]
        try:
            args = [
                "infer", "--world", str(world_dir), "--query", "0",
                "--interval", "240",
            ]

            def route_lines(text):
                return [line for line in text.splitlines() if "log-score" in line]

            assert main(args) == 0
            out_memory = capsys.readouterr().out
            remote_args = args + [
                "--archive-backend", "remote", "--tile-size", "700",
                "--replication", "2",
            ]
            for addr in addrs:
                remote_args += ["--shard-addr", addr]
            assert main(remote_args) == 0
            out_remote = capsys.readouterr().out
            assert route_lines(out_remote) == route_lines(out_memory)
            assert route_lines(out_memory)
        finally:
            for s in servers:
                s.stop()

    def test_infer_persists_and_reuses_landmarks(self, world_dir, capsys):
        import json

        args = ["infer", "--world", str(world_dir), "--query", "0"]
        assert main(args) == 0
        cache = world_dir / "landmarks.json"
        assert cache.exists()
        payload = json.loads(cache.read_text(encoding="utf-8"))
        assert payload["format"] == "repro-landmarks-v1"
        stamp = cache.stat().st_mtime_ns
        capsys.readouterr()
        assert main(args) == 0  # second run reuses the cache
        assert cache.stat().st_mtime_ns == stamp

    def test_infer_landmark_cache_opt_out(self, world_dir, tmp_path, capsys):
        import shutil

        world = tmp_path / "world-nocache"
        shutil.copytree(world_dir, world)
        (world / "landmarks.json").unlink(missing_ok=True)
        assert (
            main(
                [
                    "infer",
                    "--world",
                    str(world),
                    "--query",
                    "0",
                    "--no-landmark-cache",
                ]
            )
            == 0
        )
        assert not (world / "landmarks.json").exists()

    def test_infer_routing_tiers_identical(self, world_dir, capsys):
        def route_lines(text):
            return [line for line in text.splitlines() if "log-score" in line]

        base = ["infer", "--world", str(world_dir), "--query", "0"]
        outputs = {}
        for tier in ("astar", "bidi", "table", "ch"):
            assert main(base + ["--routing", tier]) == 0
            outputs[tier] = route_lines(capsys.readouterr().out)
        assert outputs["astar"]
        for tier in ("bidi", "table", "ch"):
            assert outputs[tier] == outputs["astar"]


class TestChCache:
    """``repro infer --routing ch`` round-trips the repro-ch-v1 cache."""

    def test_infer_persists_and_reuses_hierarchy(
        self, world_dir, capsys, monkeypatch
    ):
        import json

        from repro.roadnet.contraction import ContractionHierarchy

        args = ["infer", "--world", str(world_dir), "--query", "0",
                "--routing", "ch"]
        assert main(args) == 0
        cache = world_dir / "contraction.json"
        assert cache.exists()
        payload = json.loads(cache.read_text(encoding="utf-8"))
        assert payload["format"] == "repro-ch-v1"
        capsys.readouterr()

        # The second run must *load* the hierarchy, never re-contract.
        def refuse(*a, **kw):
            raise AssertionError("cache present: build() must not run")

        monkeypatch.setattr(ContractionHierarchy, "build", refuse)
        assert main(args) == 0
        assert not capsys.readouterr().err

    def test_wrong_version_rejected_naming_found_format(
        self, world_dir, tmp_path, capsys
    ):
        import json
        import shutil

        world = tmp_path / "world-stale-ch"
        shutil.copytree(world_dir, world)
        cache = world / "contraction.json"
        cache.write_text(
            json.dumps({"format": "repro-ch-v999", "rank": {}, "edges": []}),
            encoding="utf-8",
        )
        args = ["infer", "--world", str(world), "--query", "0",
                "--routing", "ch"]
        assert main(args) == 0  # rebuilt after rejecting the stale file
        err = capsys.readouterr().err
        assert "repro-ch-v999" in err
        # The rebuild overwrote the stale cache with the current format.
        payload = json.loads(cache.read_text(encoding="utf-8"))
        assert payload["format"] == "repro-ch-v1"

    def test_ch_cache_opt_out(self, world_dir, tmp_path):
        import shutil

        world = tmp_path / "world-no-ch-cache"
        shutil.copytree(world_dir, world)
        (world / "contraction.json").unlink(missing_ok=True)
        args = ["infer", "--world", str(world), "--query", "0",
                "--routing", "ch", "--no-ch-cache"]
        assert main(args) == 0
        assert not (world / "contraction.json").exists()

    def test_ch_cache_custom_path(self, world_dir, tmp_path, capsys):
        import json

        target = tmp_path / "elsewhere" / "ch.json"
        target.parent.mkdir(parents=True)
        args = ["infer", "--world", str(world_dir), "--query", "0",
                "--routing", "ch", "--ch-cache", str(target)]
        assert main(args) == 0
        payload = json.loads(target.read_text(encoding="utf-8"))
        assert payload["format"] == "repro-ch-v1"


class TestServeCommand:
    """The gateway subcommand and the conflicting-flag regression tests.

    Before the fix, ``archive-serve`` with a shard index outside
    ``--num-shards`` (or a non-positive ``--num-shards``/``--tile-size``)
    surfaced ``ArchiveShardServer``'s ``ValueError`` as a traceback, and
    ``serve`` with a ``--shard-addr`` count that cannot form
    ``--replication`` replica sets dialled the fleet before failing.
    All of these must be usage errors: one line on stderr, exit 2.
    """

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve", "--world", "w"])
        assert args.port == 0
        assert args.workers == 1
        assert args.max_inflight == 16
        assert args.max_queue == 16
        assert args.archive_backend == "memory"

    def test_serve_rejects_conflicting_shard_addr_replication(
        self, world_dir, capsys
    ):
        code = main(
            ["serve", "--world", str(world_dir),
             "--archive-backend", "remote",
             "--shard-addr", "127.0.0.1:7701",
             "--shard-addr", "127.0.0.1:7702",
             "--shard-addr", "127.0.0.1:7703",
             "--replication", "2"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "multiple of the replica count" in err
        assert "Traceback" not in err

    def test_serve_rejects_malformed_shard_addr(self, world_dir, capsys):
        code = main(
            ["serve", "--world", str(world_dir),
             "--archive-backend", "remote", "--shard-addr", "localhost"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "--shard-addr" in err
        assert "Traceback" not in err

    def test_serve_rejects_bad_worker_and_queue_counts(self, world_dir, capsys):
        assert main(["serve", "--world", str(world_dir), "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err
        assert (
            main(["serve", "--world", str(world_dir), "--max-inflight", "0"]) == 2
        )
        assert "--max-inflight" in capsys.readouterr().err
        assert main(["serve", "--world", str(world_dir), "--max-queue", "-1"]) == 2
        assert "--max-queue" in capsys.readouterr().err

    def test_serve_replication_without_remote_rejected(self, world_dir, capsys):
        code = main(
            ["serve", "--world", str(world_dir), "--replication", "2"]
        )
        assert code == 2
        assert "remote" in capsys.readouterr().err

    def test_archive_serve_rejects_out_of_range_shard_index(self, capsys):
        code = main(["archive-serve", "--shard-index", "5", "--num-shards", "2"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--shard-index 5 conflicts with --num-shards 2" in err
        assert "Traceback" not in err

    def test_archive_serve_rejects_out_of_range_replica_of(self, capsys):
        code = main(["archive-serve", "--replica-of", "3", "--num-shards", "3"])
        assert code == 2
        assert "--replica-of 3 conflicts with --num-shards 3" in capsys.readouterr().err

    def test_archive_serve_rejects_bad_counts(self, capsys):
        assert main(["archive-serve", "--shard-index", "0", "--num-shards", "0"]) == 2
        assert "--num-shards" in capsys.readouterr().err
        assert (
            main(["archive-serve", "--shard-index", "0", "--num-shards", "1",
                  "--tile-size", "0"])
            == 2
        )
        assert "--tile-size" in capsys.readouterr().err
        assert (
            main(["archive-serve", "--shard-index", "0", "--num-shards", "1",
                  "--replica-id", "-1"])
            == 2
        )
        assert "--replica-id" in capsys.readouterr().err

    def test_archive_serve_rejects_bad_wal_flags(self, tmp_path, capsys):
        base = ["archive-serve", "--shard-index", "0", "--num-shards", "1"]
        assert main(base + ["--fsync-interval", "0"]) == 2
        assert "--fsync-interval" in capsys.readouterr().err
        assert (
            main(base + ["--wal-dir", str(tmp_path / "w"), "--compact-every", "-1"])
            == 2
        )
        assert "--compact-every" in capsys.readouterr().err
        # Validation fires before the server (and its WAL dir) exists.
        assert not (tmp_path / "w").exists()
        assert main(base + ["--compact-every", "64"]) == 2
        assert "--wal-dir" in capsys.readouterr().err

    def test_serve_gateway_end_to_end(self, world_dir):
        """``repro serve`` semantics through the library path the CLI uses.

        Drives the exact objects ``_cmd_serve`` builds (the command
        itself blocks serving forever) and checks a served query matches
        ``repro infer``'s routes for the same world.
        """
        from repro.core.system import HRIS, HRISConfig
        from repro.datasets.io import load_scenario
        from repro.serve import (
            GatewayClient,
            GatewayConfig,
            InferenceGateway,
            hris_backends,
        )

        scenario = load_scenario(world_dir)
        hris = HRIS(scenario.network, scenario.archive, HRISConfig())
        query = scenario.queries[0].query
        direct = [
            (tuple(g.route.segment_ids), round(g.log_score, 9))
            for g in hris.infer_routes(query)
        ]
        gateway = InferenceGateway(
            hris_backends(hris, 2),
            GatewayConfig(max_inflight=4, max_queue=4),
        )
        host, port = gateway.start()
        try:
            with GatewayClient(host, port) as client:
                reply = client.infer(query)
                assert reply.status == 200
                assert reply.route_keys() == direct
                assert client.healthz().payload["status"] == "ok"
        finally:
            gateway.stop()
