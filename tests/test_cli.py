"""End-to-end tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def world_dir(tmp_path_factory):
    path = tmp_path_factory.mktemp("world")
    code = main(
        [
            "generate",
            "--out",
            str(path),
            "--seed",
            "5",
            "--grid",
            "8",
            "--od-pairs",
            "3",
            "--trips",
            "30",
            "--queries",
            "2",
        ]
    )
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "--out", "x"])
        assert args.seed == 42
        assert args.grid == 14

    def test_infer_method_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["infer", "--world", "x", "--method", "bogus"]
            )


class TestCommands:
    def test_generate_creates_artifacts(self, world_dir):
        assert (world_dir / "network.json").exists()
        assert (world_dir / "archive.jsonl").exists()
        assert (world_dir / "queries.json").exists()

    def test_infer_prints_routes(self, world_dir, capsys):
        code = main(
            [
                "infer",
                "--world",
                str(world_dir),
                "--query",
                "0",
                "--interval",
                "240",
                "--k",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "#1:" in out
        assert "log-score" in out

    def test_infer_bad_query_index(self, world_dir, capsys):
        code = main(
            ["infer", "--world", str(world_dir), "--query", "99"]
        )
        assert code == 2
        assert "out of range" in capsys.readouterr().err

    def test_infer_forced_method(self, world_dir, capsys):
        code = main(
            [
                "infer",
                "--world",
                str(world_dir),
                "--query",
                "0",
                "--method",
                "tgi",
            ]
        )
        assert code == 0

    def test_evaluate_prints_table(self, world_dir, capsys):
        code = main(
            ["evaluate", "--world", str(world_dir), "--intervals", "240", "600"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "HRIS" in out
        assert "ST-matching" in out

    def test_infer_sharded_backend_matches_memory(self, world_dir, capsys):
        args = ["infer", "--world", str(world_dir), "--query", "0", "--interval", "240"]
        def route_lines(text):
            return [line for line in text.splitlines() if "log-score" in line]

        assert main(args) == 0
        out_memory = capsys.readouterr().out
        assert main(args + ["--archive-backend", "sharded", "--tile-size", "700"]) == 0
        out_sharded = capsys.readouterr().out
        # Identical routes, scores and accuracies from both backends (the
        # header line carries wall-clock time, so compare the route lines).
        assert route_lines(out_sharded) == route_lines(out_memory)
        assert route_lines(out_memory)

    def test_infer_persists_and_reuses_landmarks(self, world_dir, capsys):
        import json

        args = ["infer", "--world", str(world_dir), "--query", "0"]
        assert main(args) == 0
        cache = world_dir / "landmarks.json"
        assert cache.exists()
        payload = json.loads(cache.read_text(encoding="utf-8"))
        assert payload["format"] == "repro-landmarks-v1"
        stamp = cache.stat().st_mtime_ns
        capsys.readouterr()
        assert main(args) == 0  # second run reuses the cache
        assert cache.stat().st_mtime_ns == stamp

    def test_infer_landmark_cache_opt_out(self, world_dir, tmp_path, capsys):
        import shutil

        world = tmp_path / "world-nocache"
        shutil.copytree(world_dir, world)
        (world / "landmarks.json").unlink(missing_ok=True)
        assert (
            main(
                [
                    "infer",
                    "--world",
                    str(world),
                    "--query",
                    "0",
                    "--no-landmark-cache",
                ]
            )
            == 0
        )
        assert not (world / "landmarks.json").exists()
