"""Unit tests for shared map-matching infrastructure."""

import math

import pytest

from repro.geo.point import Point
from repro.mapmatching.base import (
    find_candidates,
    gps_probability,
    stitch_route,
)
from repro.roadnet.generators import manhattan_line


@pytest.fixture(scope="module")
def line():
    return manhattan_line(n_nodes=6, spacing=100.0)


class TestGpsProbability:
    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            gps_probability(10.0, 0.0)

    def test_peak_at_zero(self):
        assert gps_probability(0.0, 20.0) > gps_probability(5.0, 20.0)

    def test_monotone_decreasing(self):
        values = [gps_probability(d, 20.0) for d in (0, 10, 20, 40, 80)]
        assert values == sorted(values, reverse=True)

    def test_gaussian_formula(self):
        sigma = 20.0
        expected = 1.0 / (math.sqrt(2 * math.pi) * sigma)
        assert math.isclose(gps_probability(0.0, sigma), expected)


class TestFindCandidates:
    def test_within_radius(self, line):
        cands = find_candidates(line, Point(150, 5), 10.0)
        assert cands
        assert all(c.distance <= 10.0 for c in cands)

    def test_fallback_when_radius_empty(self, line):
        cands = find_candidates(line, Point(150, 5000), 10.0, max_candidates=3)
        assert cands  # the fallback kicks in
        assert len(cands) <= 3

    def test_max_candidates_cap(self, line):
        cands = find_candidates(line, Point(150, 0), 1000.0, max_candidates=2)
        assert len(cands) == 2

    def test_nearest_first(self, line):
        cands = find_candidates(line, Point(150, 5), 1000.0)
        dists = [c.distance for c in cands]
        assert dists == sorted(dists)


class TestStitchRoute:
    def test_empty(self, line):
        assert stitch_route(line, []).segment_ids == ()

    def test_single(self, line):
        assert stitch_route(line, [0]).segment_ids == (0,)

    def test_collapses_duplicates(self, line):
        assert stitch_route(line, [0, 0, 0]).segment_ids == (0,)

    def test_adjacent_pass_through(self, line):
        r = stitch_route(line, [0, 2])
        assert r.segment_ids == (0, 2)
        assert r.is_connected(line)

    def test_bridges_gap(self, line):
        r = stitch_route(line, [0, 6])
        assert r.is_connected(line)
        assert r.first == 0
        assert r.last == 6
        assert len(r) == 4  # 0, 2, 4, 6

    def test_result_always_deduped(self, line):
        r = stitch_route(line, [0, 2, 2, 4])
        assert r.segment_ids == (0, 2, 4)
