"""Contraction-hierarchy correctness: distances, canonical paths, buckets.

The CH tier joins the identity-gated routing family: not merely "a
shortest path" but the *same* path the seed's Dijkstra reconstructs
(canonical min-id tie-break) with the *same* float distance.  These tests
pin both on structured grids and on randomly generated networks including
disconnected pairs and zero-length edges, check the bucket-based
many-to-many tables against ``dijkstra_all``, and cover the build's
determinism and the ``repro-ch-v1`` persistence round-trip.
"""

import math
import random

import numpy as np
import pytest

from repro.geo.point import Point
from repro.roadnet.contraction import (
    CHBucketOracle,
    ContractionHierarchy,
    ch_shortest_path,
    ch_shortest_route_between_segments,
)
from repro.roadnet.generators import GridCityConfig, grid_city, manhattan_line
from repro.roadnet.io import (
    contraction_from_dict,
    contraction_to_dict,
    load_contraction,
    save_contraction,
)
from repro.roadnet.network import RoadNetwork, RoadNode, RoadSegment
from repro.roadnet.shortest_path import (
    LandmarkIndex,
    SearchStats,
    bidi_astar,
    dijkstra,
    dijkstra_all,
    shortest_route_between_segments,
)
from repro.roadnet.table_oracle import DistanceTableOracle


def random_network(seed: int, n: int = 30, extra_edges: int = 50) -> RoadNetwork:
    """A random directed network: scattered nodes, random directed edges.

    Deliberately *not* strongly connected — plenty of unreachable pairs —
    and seeded so failures reproduce.
    """
    rng = random.Random(seed)
    nodes = [
        RoadNode(i, Point(rng.uniform(0, 5_000), rng.uniform(0, 5_000)))
        for i in range(n)
    ]
    net = RoadNetwork()
    for node in nodes:
        net.add_node(node)
    sid = 0
    seen = set()
    for __ in range(extra_edges):
        a, b = rng.randrange(n), rng.randrange(n)
        if a == b or (a, b) in seen:
            continue
        seen.add((a, b))
        net.add_segment(
            RoadSegment.build(
                sid, a, b, [nodes[a].point, nodes[b].point], speed_limit=13.9
            )
        )
        sid += 1
    return net


@pytest.fixture(scope="module")
def city():
    return grid_city(
        GridCityConfig(nx=8, ny=8, drop_fraction=0.1, one_way_fraction=0.15),
        np.random.default_rng(11),
    )


@pytest.fixture(scope="module")
def city_hierarchy(city):
    return ContractionHierarchy.build(city)


@pytest.fixture(scope="module")
def city_landmarks(city):
    return LandmarkIndex.build(city, 6)


class TestDistanceIdentity:
    def test_matches_dijkstra_on_city(self, city, city_hierarchy):
        rng = np.random.default_rng(5)
        nodes = [n.node_id for n in city.nodes()]
        for __ in range(60):
            a, b = (int(x) for x in rng.choice(nodes, size=2))
            d_uni, p_uni = dijkstra(city, a, b)
            d_ch, p_ch = ch_shortest_path(city, city_hierarchy, a, b)
            assert d_ch == d_uni
            assert p_ch == p_uni

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_dijkstra_on_random_networks(self, seed):
        net = random_network(seed)
        hierarchy = ContractionHierarchy.build(net)
        node_ids = [n.node_id for n in net.nodes()]
        rng = random.Random(seed + 100)
        disconnected = 0
        for __ in range(40):
            a, b = rng.choice(node_ids), rng.choice(node_ids)
            d_uni, p_uni = dijkstra(net, a, b)
            d_ch, p_ch = ch_shortest_path(net, hierarchy, a, b)
            if math.isinf(d_uni):
                disconnected += 1
                assert math.isinf(d_ch)
                assert p_ch == []
            else:
                assert d_ch == d_uni
                assert p_ch == p_uni
        # The generator must actually have produced unreachable pairs,
        # otherwise this test silently stopped covering them.
        assert disconnected > 0

    def test_source_equals_target(self, city, city_hierarchy):
        assert ch_shortest_path(city, city_hierarchy, 3, 3) == (0.0, [3])

    def test_unreachable_isolated_node(self):
        net = manhattan_line(4)
        net.add_node(RoadNode(99, Point(0, 9_999)))
        hierarchy = ContractionHierarchy.build(net)
        d, path = ch_shortest_path(net, hierarchy, 0, 99)
        assert math.isinf(d)
        assert path == []

    def test_bounded_distance_semantics(self, city, city_hierarchy):
        """``max_distance`` bounds the *returned* distance, like the oracle
        tables and ``bidi_astar``: reachable-but-far pairs read as inf."""
        rng = np.random.default_rng(6)
        nodes = [n.node_id for n in city.nodes()]
        for __ in range(40):
            a, b = (int(x) for x in rng.choice(nodes, size=2))
            d_full, __p = dijkstra(city, a, b)
            d_bound, p_bound = ch_shortest_path(
                city, city_hierarchy, a, b, max_distance=1_200.0
            )
            if d_full <= 1_200.0:
                assert d_bound == d_full
            else:
                assert math.isinf(d_bound)
                assert p_bound == []

    def test_segment_routes_match_sequential_tier(self, city, city_hierarchy):
        rng = np.random.default_rng(9)
        segments = [s.segment_id for s in city.segments()]
        for __ in range(40):
            a, b = (int(x) for x in rng.choice(segments, size=2))
            d_seq, r_seq = shortest_route_between_segments(city, a, b)
            d_ch, r_ch = ch_shortest_route_between_segments(
                city, city_hierarchy, a, b
            )
            assert d_ch == d_seq
            assert r_ch.segment_ids == r_seq.segment_ids


class TestCanonicalTieBreak:
    def test_identical_node_paths_on_tie_heavy_grid(self):
        """A jitter-free grid is packed with equal-length alternatives; the
        hierarchy query must still return the unidirectional search's
        canonical (min-id predecessor) path, node for node."""
        net = grid_city(
            GridCityConfig(nx=6, ny=6, jitter=0.0, drop_fraction=0.0),
            np.random.default_rng(0),
        )
        hierarchy = ContractionHierarchy.build(net)
        nodes = sorted(n.node_id for n in net.nodes())
        for a in nodes[::5]:
            for b in nodes[::7]:
                d_uni, p_uni = dijkstra(net, a, b)
                d_ch, p_ch = ch_shortest_path(net, hierarchy, a, b)
                assert p_ch == p_uni
                assert d_ch == d_uni

    def test_zero_length_edges(self):
        """Coincident nodes joined by zero-length segments create zero-cost
        cycles; contraction and the query walk must terminate and stay
        canonical."""
        p0, p1 = Point(0, 0), Point(100, 0)
        net = RoadNetwork()
        net.add_node(RoadNode(0, p0))
        net.add_node(RoadNode(1, p0))  # coincident with node 0
        net.add_node(RoadNode(2, p1))
        net.add_segment(RoadSegment.build(0, 0, 1, [p0, p0], speed_limit=10.0))
        net.add_segment(RoadSegment.build(1, 1, 0, [p0, p0], speed_limit=10.0))
        net.add_segment(RoadSegment.build(2, 1, 2, [p0, p1], speed_limit=10.0))
        net.add_segment(RoadSegment.build(3, 2, 1, [p1, p0], speed_limit=10.0))
        hierarchy = ContractionHierarchy.build(net)
        for a in (0, 1, 2):
            for b in (0, 1, 2):
                d_uni, p_uni = dijkstra(net, a, b)
                d_ch, p_ch = ch_shortest_path(net, hierarchy, a, b)
                assert d_ch == d_uni
                assert p_ch == p_uni

    def test_parallel_segments_keep_cheapest(self):
        """Parallel edges of different lengths: the path must thread the
        cheapest, exactly as the unidirectional search does."""
        p0, p1 = Point(0, 0), Point(100, 0)
        detour = Point(50, 80)
        net = RoadNetwork()
        net.add_node(RoadNode(0, p0))
        net.add_node(RoadNode(1, p1))
        net.add_segment(RoadSegment.build(0, 0, 1, [p0, detour, p1], speed_limit=10.0))
        net.add_segment(RoadSegment.build(1, 0, 1, [p0, p1], speed_limit=10.0))
        hierarchy = ContractionHierarchy.build(net)
        d_uni, p_uni = dijkstra(net, 0, 1)
        d_ch, p_ch = ch_shortest_path(net, hierarchy, 0, 1)
        assert d_ch == d_uni == 100.0
        assert p_ch == p_uni == [0, 1]


class TestBuild:
    def test_deterministic(self, city):
        first = ContractionHierarchy.build(city)
        second = ContractionHierarchy.build(city)
        assert first.rank == second.rank
        assert first.edges == second.edges

    def test_shortcut_middles_are_contracted_lower(self, city_hierarchy):
        """Every shortcut's middle node must rank below both endpoints —
        that is what contraction means, and unpacking relies on it."""
        rank = city_hierarchy.rank
        shortcuts = 0
        for (a, b), (__, mid) in city_hierarchy.edges.items():
            if mid == -1:
                continue
            shortcuts += 1
            assert rank[mid] < rank[a]
            assert rank[mid] < rank[b]
        assert shortcuts > 0  # an 8x8 city without shortcuts is suspicious

    def test_matches_network(self, city, city_hierarchy):
        assert city_hierarchy.matches(city)
        other = manhattan_line(4)
        assert not city_hierarchy.matches(other)


class TestBucketOracle:
    def test_prepare_matches_dijkstra_all_tables(self, city, city_hierarchy):
        bound = 1_500.0
        rng = np.random.default_rng(13)
        nodes = [n.node_id for n in city.nodes()]
        sources = [int(x) for x in rng.choice(nodes, size=6)]
        targets = [int(x) for x in rng.choice(nodes, size=12)]
        oracle = CHBucketOracle(city, city_hierarchy, max_distance=bound)
        tables = oracle.prepare(sources, targets)
        for s in sources:
            reference = dijkstra_all(city, s, max_distance=bound)
            for t in targets:
                assert tables[s].get(t) == reference.get(t)

    def test_matches_table_oracle_surface(self, city, city_hierarchy):
        """Drop-in check against ``DistanceTableOracle``: same distances
        through ``prepare``, ``table`` views and projection arithmetic."""
        bound = 2_000.0
        rng = np.random.default_rng(17)
        nodes = [n.node_id for n in city.nodes()]
        segs = [s.segment_id for s in city.segments()]
        sources = [int(x) for x in rng.choice(nodes, size=4)]
        targets = [int(x) for x in rng.choice(nodes, size=8)]
        table_oracle = DistanceTableOracle(city, max_distance=bound)
        ch_oracle = CHBucketOracle(city, city_hierarchy, max_distance=bound)
        expected = table_oracle.prepare(sources, targets)
        got = ch_oracle.prepare(sources, targets)
        for s in sources:
            for t in targets:
                assert got[s].get(t) == expected[s].get(t)
        # Lazy row views cover never-announced targets on demand.
        extra = int(rng.choice(nodes))
        assert ch_oracle.table(sources[0]).get(extra) == table_oracle.table(
            sources[0]
        ).get(extra)
        for __ in range(20):
            sa, sb = (int(x) for x in rng.choice(segs, size=2))
            seg_a = city.segment(sa)
            seg_b = city.segment(sb)
            oa = float(rng.uniform(0, seg_a.length))
            ob = float(rng.uniform(0, seg_b.length))
            assert ch_oracle.route_distance_between_projections(
                sa, oa, sb, ob
            ) == table_oracle.route_distance_between_projections(sa, oa, sb, ob)

    def test_stray_pair_falls_back(self, city, city_hierarchy):
        oracle = CHBucketOracle(city, city_hierarchy)
        nodes = sorted(n.node_id for n in city.nodes())
        d = oracle.distance(nodes[0], nodes[-1])
        assert d == dijkstra(city, nodes[0], nodes[-1])[0]
        assert oracle.fallbacks == 1
        assert oracle.sweeps == 0  # no row was built for the stray pair

    def test_row_accounting_and_clear(self, city, city_hierarchy):
        oracle = CHBucketOracle(city, city_hierarchy, max_rows=2)
        nodes = sorted(n.node_id for n in city.nodes())
        oracle.prepare(nodes[:3], nodes[-2:])  # 3 rows through a 2-row LRU
        assert oracle.sweeps == 3
        assert oracle.stats.evictions == 1
        assert oracle.settled_nodes > 0
        oracle.clear()
        oracle.prepare(nodes[:1], nodes[-1:])
        assert oracle.sweeps == 4

    def test_prepare_for_fork_completes_buckets(self, city):
        hierarchy = ContractionHierarchy.build(city)
        oracle = CHBucketOracle(city, hierarchy)
        oracle.prepare_for_fork()
        assert hierarchy.bucket_builds == hierarchy.num_nodes
        builds = hierarchy.bucket_builds
        oracle.prepare([0], [1])  # joins must reuse the warmed buckets
        assert hierarchy.bucket_builds == builds


class TestStats:
    def test_settles_fewer_nodes_than_bidi_alt(
        self, city, city_hierarchy, city_landmarks
    ):
        """The point of the exercise: once buckets are warm, a hierarchy
        query touches only the forward upward space — well under the
        bidirectional ALT ball."""
        city_hierarchy.prepare_for_fork()
        nodes = sorted(n.node_id for n in city.nodes())
        pairs = [(nodes[0], nodes[-1]), (nodes[2], nodes[-3]), (nodes[5], nodes[-1])]
        s_bidi, s_ch = SearchStats(), SearchStats()
        for a, b in pairs:
            bidi_astar(city, a, b, landmarks=city_landmarks, stats=s_bidi)
            ch_shortest_path(city, city_hierarchy, a, b, stats=s_ch)
        assert s_ch.settled < s_bidi.settled
        assert s_ch.searches == len(pairs)

    def test_stall_counter_moves(self, city, city_hierarchy):
        """Stall-on-demand must actually fire somewhere on a real city."""
        stats = SearchStats()
        for node in sorted(n.node_id for n in city.nodes())[:20]:
            city_hierarchy.forward_space(node, stats=stats)
        assert stats.stalls > 0
        assert stats.settled > 0


class TestPersistence:
    def test_round_trip_dict(self, city, city_hierarchy):
        clone = contraction_from_dict(contraction_to_dict(city_hierarchy))
        assert clone.rank == city_hierarchy.rank
        assert clone.edges == city_hierarchy.edges
        a, b = 0, city_hierarchy.num_nodes - 1
        assert ch_shortest_path(city, clone, a, b) == ch_shortest_path(
            city, city_hierarchy, a, b
        )

    def test_round_trip_file(self, city, city_hierarchy, tmp_path):
        path = tmp_path / "contraction.json"
        save_contraction(city_hierarchy, path)
        clone = load_contraction(path)
        assert clone.rank == city_hierarchy.rank
        assert clone.edges == city_hierarchy.edges

    def test_unknown_format_is_named(self):
        with pytest.raises(ValueError, match="repro-ch-v999"):
            contraction_from_dict({"format": "repro-ch-v999", "rank": {}})

    def test_malformed_edge_references(self):
        with pytest.raises(ValueError, match="unknown node"):
            contraction_from_dict(
                {"format": "repro-ch-v1", "rank": {"0": 0}, "edges": [[0, 5, 1.0, -1]]}
            )
