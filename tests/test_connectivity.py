"""Unit and differential tests for repro.roadnet.connectivity."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.roadnet.connectivity import (
    is_strongly_connected,
    network_strongly_connected,
    strongly_connected_components,
    weakly_connected_components,
)
from repro.roadnet.generators import GridCityConfig, grid_city, manhattan_line

import numpy as np


def adj_from_dict(graph):
    return lambda n: iter(graph.get(n, []))


class TestSCC:
    def test_single_node(self):
        sccs = strongly_connected_components([1], adj_from_dict({1: []}))
        assert sccs == [{1}]

    def test_two_cycles_and_bridge(self):
        graph = {1: [2], 2: [1, 3], 3: [4], 4: [3]}
        sccs = strongly_connected_components([1, 2, 3, 4], adj_from_dict(graph))
        assert sorted(map(sorted, sccs)) == [[1, 2], [3, 4]]

    def test_dag_has_singleton_sccs(self):
        graph = {1: [2], 2: [3], 3: []}
        sccs = strongly_connected_components([1, 2, 3], adj_from_dict(graph))
        assert len(sccs) == 3

    def test_self_loop(self):
        graph = {1: [1]}
        assert strongly_connected_components([1], adj_from_dict(graph)) == [{1}]

    def test_deep_chain_no_recursion_error(self):
        n = 5000
        graph = {i: [i + 1] for i in range(n)}
        graph[n] = []
        sccs = strongly_connected_components(range(n + 1), adj_from_dict(graph))
        assert len(sccs) == n + 1


class TestWeakComponents:
    def test_two_islands(self):
        graph = {1: [2], 2: [], 3: [4], 4: []}
        radj = {1: [], 2: [1], 3: [], 4: [3]}
        comps = weakly_connected_components(
            [1, 2, 3, 4], adj_from_dict(graph), adj_from_dict(radj)
        )
        assert sorted(map(sorted, comps)) == [[1, 2], [3, 4]]

    def test_direction_ignored(self):
        graph = {1: [2], 2: [], 3: [2]}
        radj = {1: [], 2: [1, 3], 3: []}
        comps = weakly_connected_components(
            [1, 2, 3], adj_from_dict(graph), adj_from_dict(radj)
        )
        assert comps == [{1, 2, 3}]


class TestIsStronglyConnected:
    def test_empty_graph(self):
        assert is_strongly_connected([], adj_from_dict({}))

    def test_cycle(self):
        graph = {1: [2], 2: [3], 3: [1]}
        assert is_strongly_connected([1, 2, 3], adj_from_dict(graph))

    def test_chain_is_not(self):
        graph = {1: [2], 2: [3], 3: []}
        assert not is_strongly_connected([1, 2, 3], adj_from_dict(graph))


class TestNetworkConnectivity:
    def test_manhattan_line(self):
        assert network_strongly_connected(manhattan_line(5))

    def test_grid_city_guarantee(self):
        net = grid_city(
            GridCityConfig(nx=7, ny=7, drop_fraction=0.25), np.random.default_rng(5)
        )
        assert network_strongly_connected(net)


class TestDifferentialVsNetworkx:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(2, 10),
        st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=40),
    )
    def test_scc_matches_networkx(self, n, raw_edges):
        edges = [(u % n, v % n) for u, v in raw_edges if u % n != v % n]
        g = nx.DiGraph()
        g.add_nodes_from(range(n))
        g.add_edges_from(edges)
        graph = {u: [v for a, v in edges if a == u] for u in range(n)}
        ours = strongly_connected_components(range(n), adj_from_dict(graph))
        theirs = list(nx.strongly_connected_components(g))
        assert sorted(map(sorted, ours)) == sorted(map(sorted, theirs))
