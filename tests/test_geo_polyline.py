"""Unit tests for repro.geo.polyline."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo.point import Point
from repro.geo.polyline import (
    interpolate_along,
    point_to_polyline_distance,
    polyline_bbox,
    polyline_length,
    project_point_to_polyline,
    project_point_to_segment,
    resample_polyline,
)

coords = st.floats(-1e4, 1e4, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)
polylines = st.lists(points, min_size=2, max_size=8)


class TestLength:
    def test_empty_and_single(self):
        assert polyline_length([]) == 0.0
        assert polyline_length([Point(1, 1)]) == 0.0

    def test_l_shape(self):
        assert polyline_length([Point(0, 0), Point(3, 0), Point(3, 4)]) == 7.0


class TestSegmentProjection:
    def test_interior(self):
        p, t = project_point_to_segment(Point(1, 5), Point(0, 0), Point(2, 0))
        assert p == Point(1, 0)
        assert t == 0.5

    def test_clamps_to_start(self):
        p, t = project_point_to_segment(Point(-3, 1), Point(0, 0), Point(2, 0))
        assert p == Point(0, 0)
        assert t == 0.0

    def test_clamps_to_end(self):
        p, t = project_point_to_segment(Point(9, 1), Point(0, 0), Point(2, 0))
        assert p == Point(2, 0)
        assert t == 1.0

    def test_degenerate_segment(self):
        p, t = project_point_to_segment(Point(5, 5), Point(1, 1), Point(1, 1))
        assert p == Point(1, 1)


class TestPolylineProjection:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            project_point_to_polyline(Point(0, 0), [])

    def test_single_point_polyline(self):
        proj = project_point_to_polyline(Point(3, 4), [Point(0, 0)])
        assert proj.distance == 5.0
        assert proj.offset == 0.0

    def test_projects_to_nearest_leg(self):
        poly = [Point(0, 0), Point(10, 0), Point(10, 10)]
        proj = project_point_to_polyline(Point(11, 9), poly)
        assert proj.segment_index == 1
        assert math.isclose(proj.distance, 1.0)
        assert math.isclose(proj.offset, 19.0)

    def test_distance_function(self):
        poly = [Point(0, 0), Point(10, 0)]
        assert point_to_polyline_distance(Point(5, 3), poly) == 3.0

    @given(polylines, points)
    def test_projection_point_on_or_near_polyline(self, poly, q):
        proj = project_point_to_polyline(q, poly)
        # The projected point is itself at ~zero distance from the polyline.
        assert point_to_polyline_distance(proj.point, poly) <= 1e-6 + 1e-9 * abs(
            proj.offset
        )

    @given(polylines, points)
    def test_projection_is_nearest_vertex_bound(self, poly, q):
        proj = project_point_to_polyline(q, poly)
        best_vertex = min(q.distance_to(v) for v in poly)
        assert proj.distance <= best_vertex + 1e-9

    @given(polylines, points)
    def test_offset_within_length(self, poly, q):
        proj = project_point_to_polyline(q, poly)
        assert -1e-9 <= proj.offset <= polyline_length(poly) + 1e-6


class TestInterpolation:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            interpolate_along([], 1.0)

    def test_clamps(self):
        poly = [Point(0, 0), Point(10, 0)]
        assert interpolate_along(poly, -5) == Point(0, 0)
        assert interpolate_along(poly, 50) == Point(10, 0)

    def test_midpoint(self):
        poly = [Point(0, 0), Point(10, 0)]
        assert interpolate_along(poly, 5) == Point(5, 0)

    def test_across_vertices(self):
        poly = [Point(0, 0), Point(10, 0), Point(10, 10)]
        assert interpolate_along(poly, 15) == Point(10, 5)

    @given(polylines, st.floats(0, 1))
    def test_interpolated_point_is_on_polyline(self, poly, frac):
        total = polyline_length(poly)
        p = interpolate_along(poly, frac * total)
        assert point_to_polyline_distance(p, poly) <= 1e-6


class TestResample:
    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            resample_polyline([Point(0, 0), Point(1, 0)], 0.0)
        with pytest.raises(ValueError):
            resample_polyline([], 1.0)

    def test_keeps_endpoints(self):
        poly = [Point(0, 0), Point(10, 0)]
        out = resample_polyline(poly, 3.0)
        assert out[0] == poly[0]
        assert out[-1] == poly[-1]

    def test_spacing_approximate(self):
        poly = [Point(0, 0), Point(100, 0)]
        out = resample_polyline(poly, 10.0)
        assert len(out) == 11
        gaps = [a.distance_to(b) for a, b in zip(out, out[1:])]
        assert all(math.isclose(g, 10.0, rel_tol=1e-6) for g in gaps)

    def test_zero_length_polyline(self):
        out = resample_polyline([Point(1, 1), Point(1, 1)], 5.0)
        assert out == [Point(1, 1)]


class TestBBox:
    def test_polyline_bbox(self):
        b = polyline_bbox([Point(0, 5), Point(2, -1)])
        assert (b.min_x, b.min_y, b.max_x, b.max_y) == (0, -1, 2, 5)
