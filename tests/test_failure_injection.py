"""Failure-injection tests: the system must degrade, not crash.

Each test injects a pathological condition — off-map queries, teleporting
archive trajectories, degenerate geometries, hostile parameters — and
asserts HRIS still produces a well-formed answer (or a clear error).
"""

import numpy as np
import pytest

from repro.core.archive import TrajectoryArchive
from repro.core.system import HRIS, HRISConfig
from repro.geo.point import Point
from repro.roadnet.generators import GridCityConfig, grid_city, manhattan_line
from repro.trajectory.model import GPSPoint, Trajectory


@pytest.fixture(scope="module")
def world():
    rng = np.random.default_rng(4)
    network = grid_city(GridCityConfig(nx=8, ny=8), rng)
    from repro.datasets.synthetic import alternative_routes
    from repro.trajectory.simulate import DriveConfig, drive_route

    archive = TrajectoryArchive()
    routes = alternative_routes(network, 0, 63, 2, rng)
    for k in range(12):
        drive = drive_route(
            network,
            routes[k % len(routes)],
            k,
            config=DriveConfig(sample_interval_s=60.0, gps_sigma_m=12.0),
            rng=rng,
        )
        archive.add(drive.trajectory)
    return network, archive


def make_query(points_times):
    return Trajectory.build(
        99, [GPSPoint(Point(x, y), t) for x, y, t in points_times]
    )


class TestHostileQueries:
    def test_query_far_off_the_map(self, world):
        network, archive = world
        hris = HRIS(network, archive, HRISConfig())
        # 50 km away from the city: no references, no nearby segments
        # within any candidate radius — the fallback must still answer.
        query = make_query(
            [(50_000.0, 50_000.0, 0.0), (55_000.0, 50_000.0, 600.0)]
        )
        routes = hris.infer_routes(query, 2)
        assert routes
        assert routes[0].route.is_connected(network)

    def test_stationary_query(self, world):
        network, archive = world
        hris = HRIS(network, archive, HRISConfig())
        query = make_query([(1000.0, 1000.0, 0.0), (1000.5, 1000.0, 600.0)])
        routes = hris.infer_routes(query, 1)
        assert routes

    def test_teleporting_query(self, world):
        # Consecutive points farther apart than V_max allows: no reference
        # can satisfy the speed ellipse, but the query must still resolve.
        network, archive = world
        hris = HRIS(network, archive, HRISConfig())
        query = make_query([(0.0, 0.0, 0.0), (3500.0, 3500.0, 10.0)])
        routes, detail = hris.infer_routes_with_details(query, 1)
        assert routes
        assert detail.pairs[0].n_references == 0

    def test_many_point_query(self, world):
        network, archive = world
        hris = HRIS(network, archive, HRISConfig())
        pts = [(i * 120.0, 40.0, i * 200.0) for i in range(25)]
        routes = hris.infer_routes(make_query(pts), 2)
        assert routes
        assert routes[0].route.is_connected(network)


class TestHostileArchives:
    def test_teleporting_archive_trajectory(self, world):
        network, __ = world
        # A "trajectory" that jumps across the city instantly: the speed
        # ellipse (condition 3) should keep it from poisoning references,
        # and inference must not crash either way.
        bad = Trajectory.build(
            0,
            [
                GPSPoint(Point(0.0, 0.0), 0.0),
                GPSPoint(Point(3500.0, 0.0), 1.0),
                GPSPoint(Point(0.0, 3500.0), 2.0),
            ],
        )
        archive = TrajectoryArchive.from_trips([bad])
        hris = HRIS(network, archive, HRISConfig())
        query = make_query([(0.0, 0.0, 0.0), (1500.0, 0.0, 300.0)])
        routes = hris.infer_routes(query, 1)
        assert routes

    def test_single_point_trips_ignored_gracefully(self, world):
        network, __ = world
        lonely = Trajectory.build(0, [GPSPoint(Point(500.0, 500.0), 0.0)])
        archive = TrajectoryArchive.from_trips([lonely])
        hris = HRIS(network, archive, HRISConfig())
        query = make_query([(0.0, 0.0, 0.0), (1500.0, 0.0, 300.0)])
        assert hris.infer_routes(query, 1)

    def test_archive_of_duplicated_points(self, world):
        network, __ = world
        # GPS stuck at one location while time advances.
        stuck = Trajectory.build(
            0,
            [GPSPoint(Point(700.0, 700.0), float(i * 30)) for i in range(20)],
        )
        archive = TrajectoryArchive.from_trips([stuck])
        hris = HRIS(network, archive, HRISConfig())
        query = make_query([(500.0, 500.0, 0.0), (2000.0, 500.0, 400.0)])
        assert hris.infer_routes(query, 1)


class TestHostileParameters:
    def test_tiny_phi(self, world):
        network, archive = world
        hris = HRIS(network, archive, HRISConfig(phi=1.0))
        query = make_query([(0.0, 0.0, 0.0), (1500.0, 0.0, 300.0)])
        routes, detail = hris.infer_routes_with_details(query, 1)
        assert routes
        assert all(p.fallback or p.n_references >= 0 for p in detail.pairs)

    def test_huge_k(self, world):
        network, archive = world
        hris = HRIS(network, archive, HRISConfig())
        query = make_query([(0.0, 0.0, 0.0), (1500.0, 0.0, 300.0)])
        routes = hris.infer_routes(query, 10_000)
        assert 1 <= len(routes) <= 10_000

    def test_minimal_caps(self, world):
        network, archive = world
        cfg = HRISConfig(k1=1, k2=1, k3=1, max_local_routes=1, max_references=1)
        hris = HRIS(network, archive, cfg)
        query = make_query([(0.0, 0.0, 0.0), (1500.0, 0.0, 300.0)])
        assert len(hris.infer_routes(query)) == 1


class TestDegenerateNetworks:
    def test_two_node_network(self):
        network = manhattan_line(2, spacing=500.0)
        archive = TrajectoryArchive()
        hris = HRIS(network, archive, HRISConfig())
        query = make_query([(0.0, 0.0, 0.0), (500.0, 0.0, 120.0)])
        routes = hris.infer_routes(query, 1)
        assert routes
        assert routes[0].route
