"""Unit and property tests for Yen's K-shortest paths."""

import itertools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.roadnet.ksp import dijkstra_generic, yen_k_shortest_paths


def adj_from_dict(graph):
    return lambda n: iter(graph.get(n, []))


DIAMOND = {
    "s": [("a", 1.0), ("b", 2.0)],
    "a": [("t", 1.0), ("b", 0.5)],
    "b": [("t", 1.0)],
    "t": [],
}


class TestDijkstraGeneric:
    def test_trivial(self):
        assert dijkstra_generic(adj_from_dict(DIAMOND), "s", "s") == (0.0, ["s"])

    def test_shortest(self):
        cost, path = dijkstra_generic(adj_from_dict(DIAMOND), "s", "t")
        assert cost == 2.0
        assert path == ["s", "a", "t"]

    def test_unreachable(self):
        cost, path = dijkstra_generic(adj_from_dict({"s": []}), "s", "t")
        assert math.isinf(cost)
        assert path == []

    def test_removed_edge(self):
        cost, path = dijkstra_generic(
            adj_from_dict(DIAMOND), "s", "t", removed_edges={("s", "a")}
        )
        assert path == ["s", "b", "t"]

    def test_removed_node(self):
        cost, path = dijkstra_generic(
            adj_from_dict(DIAMOND), "s", "t", removed_nodes={"a"}
        )
        assert path == ["s", "b", "t"]

    def test_negative_weight_raises(self):
        bad = {"s": [("t", -1.0)], "t": []}
        with pytest.raises(ValueError):
            dijkstra_generic(adj_from_dict(bad), "s", "t")


class TestYen:
    def test_k_zero(self):
        assert yen_k_shortest_paths(adj_from_dict(DIAMOND), "s", "t", 0) == []

    def test_no_path(self):
        assert yen_k_shortest_paths(adj_from_dict({"s": []}), "s", "t", 3) == []

    def test_diamond_all_paths(self):
        got = yen_k_shortest_paths(adj_from_dict(DIAMOND), "s", "t", 5)
        assert [cost for cost, __ in got] == [2.0, 2.5, 3.0]
        assert got[0][1] == ["s", "a", "t"]
        assert got[1][1] == ["s", "a", "b", "t"]
        assert got[2][1] == ["s", "b", "t"]

    def test_costs_nondecreasing(self):
        got = yen_k_shortest_paths(adj_from_dict(DIAMOND), "s", "t", 5)
        costs = [c for c, __ in got]
        assert costs == sorted(costs)

    def test_paths_distinct_and_loopless(self):
        got = yen_k_shortest_paths(adj_from_dict(DIAMOND), "s", "t", 5)
        keys = {tuple(p) for __, p in got}
        assert len(keys) == len(got)
        for __, p in got:
            assert len(set(p)) == len(p)

    def test_grid_graph(self):
        # 3x3 lattice: number of monotone shortest paths from corner to
        # corner is C(4,2)=6, all of cost 4.
        graph = {}
        for x in range(3):
            for y in range(3):
                out = []
                if x < 2:
                    out.append(((x + 1, y), 1.0))
                if y < 2:
                    out.append(((x, y + 1), 1.0))
                graph[(x, y)] = out
        got = yen_k_shortest_paths(adj_from_dict(graph), (0, 0), (2, 2), 6)
        assert len(got) == 6
        assert all(cost == 4.0 for cost, __ in got)


@st.composite
def random_digraphs(draw):
    n = draw(st.integers(4, 8))
    edges = {}
    for u in range(n):
        out = []
        for v in range(n):
            if u == v:
                continue
            if draw(st.booleans()):
                w = draw(st.floats(0.1, 10.0))
                out.append((v, w))
        edges[u] = out
    return n, edges


def brute_force_k_paths(graph, s, t, k, max_len=8):
    """All simple paths up to max_len, scored and sorted."""

    def cost_of(path):
        total = 0.0
        for u, v in zip(path, path[1:]):
            w = min((w for n, w in graph[u] if n == v), default=math.inf)
            total += w
        return total

    results = []

    def dfs(node, path):
        if len(path) > max_len:
            return
        if node == t:
            results.append((cost_of(path), list(path)))
            return
        for v, __ in graph[node]:
            if v not in path:
                path.append(v)
                dfs(v, path)
                path.pop()

    dfs(s, [s])
    results.sort(key=lambda pair: (pair[0], pair[1]))
    return results[:k]


class TestYenDifferential:
    @settings(max_examples=30, deadline=None)
    @given(random_digraphs(), st.integers(1, 4))
    def test_costs_match_brute_force(self, graph_spec, k):
        n, graph = graph_spec
        got = yen_k_shortest_paths(adj_from_dict(graph), 0, n - 1, k)
        expected = brute_force_k_paths(graph, 0, n - 1, k)
        got_costs = [round(c, 9) for c, __ in got]
        expected_costs = [round(c, 9) for c, __ in expected]
        assert got_costs == expected_costs
