"""Loopback tests for the async query gateway (``repro.serve``).

Covers the serving guarantees docs/serving.md promises: concurrent
clients get bit-identical results vs direct :meth:`HRIS.infer_routes`,
saturation sheds with 429 + ``Retry-After``, coalesced duplicates
compute once, a drain completes in-flight work, ``/metrics`` has the
documented shape, and the remote client's per-replica connection pool
multiplexes without changing results.
"""

import threading
import time

import pytest

from repro.core.system import HRIS, HRISConfig
from repro.eval.harness import standard_scenario
from repro.serve import (
    GatewayClient,
    GatewayConfig,
    InferenceGateway,
    hris_backends,
    percentile,
)
from repro.trajectory.resample import downsample


def route_keys(routes):
    return [(tuple(g.route.segment_ids), round(g.log_score, 9)) for g in routes]


@pytest.fixture(scope="module")
def world():
    scenario = standard_scenario(seed=7, n_queries=4)
    queries = [
        q
        for q in (downsample(c.query, 300.0) for c in scenario.queries)
        if len(q) >= 2
    ]
    hris = HRIS(scenario.network, scenario.archive, HRISConfig())
    direct = [route_keys(hris.infer_routes(q)) for q in queries]
    return scenario, hris, queries, direct


@pytest.fixture()
def slow_gateway():
    """A one-worker gateway whose backend blocks until released."""
    release = threading.Event()
    calls = []

    def backend(trajectory, k):
        calls.append((tuple((p.point.x, p.point.y, p.t) for p in trajectory.points), k))
        release.wait(10.0)
        return []

    gateway = InferenceGateway(
        [backend],
        GatewayConfig(max_inflight=2, max_queue=1, retry_after_s=0.25),
    )
    host, port = gateway.start()
    try:
        yield gateway, host, port, release, calls
    finally:
        release.set()
        gateway.stop()


def _point_query(i):
    return [[float(i), 0.0, 0.0], [float(i), 1.0, 10.0]]


def _wait_until(predicate, timeout_s=5.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


class TestIdentity:
    def test_concurrent_clients_bit_identical(self, world):
        scenario, hris, queries, direct = world
        gateway = InferenceGateway(hris_backends(hris, 2), GatewayConfig())
        host, port = gateway.start()
        try:
            served = {}
            errors = []

            def client(idx):
                try:
                    with GatewayClient(host, port) as c:
                        reply = c.infer(queries[idx], k=None)
                        assert reply.status == 200, reply.payload
                        served[idx] = reply.route_keys()
                except Exception as exc:  # surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(len(queries))
                for _ in range(2)  # every query from two clients at once
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            for idx, keys in served.items():
                assert keys == direct[idx]
        finally:
            gateway.stop()

    def test_batch_endpoint_identical(self, world):
        scenario, hris, queries, direct = world
        gateway = InferenceGateway(hris_backends(hris, 1), GatewayConfig())
        host, port = gateway.start()
        try:
            with GatewayClient(host, port) as c:
                reply = c.infer_batch(queries)
                assert reply.status == 200
                assert reply.payload["count"] == len(queries)
                for idx, result in enumerate(reply.payload["results"]):
                    keys = [
                        (tuple(r["segments"]), round(r["log_score"], 9))
                        for r in result["routes"]
                    ]
                    assert keys == direct[idx]
        finally:
            gateway.stop()

    def test_worker_clone_identical(self, world):
        scenario, hris, queries, direct = world
        clone = hris.worker_clone()
        assert clone.network is hris.network
        assert clone.archive is hris.archive
        assert clone.engine is not hris.engine
        assert [route_keys(clone.infer_routes(q)) for q in queries] == direct


class TestAdmission:
    def test_saturated_queue_sheds_429(self, slow_gateway):
        gateway, host, port, release, calls = slow_gateway
        clients = [GatewayClient(host, port) for _ in range(2)]
        results = {}
        threads = [
            threading.Thread(
                target=lambda i=i: results.update({i: clients[i].infer(_point_query(i))})
            )
            for i in range(2)
        ]
        # Stagger the two fills: the worker must pick up the first job
        # before the second is admitted, or max_queue=1 sheds it early.
        threads[0].start()
        assert _wait_until(lambda: len(calls) == 1)
        threads[1].start()
        # one job executing + one queued == max_inflight
        assert _wait_until(
            lambda: GatewayClient(host, port).healthz().payload["admitted"] == 2
        )
        with GatewayClient(host, port) as extra:
            shed = extra.infer(_point_query(99))
            assert shed.status == 429
            assert shed.headers["retry-after"] == "1"
            assert shed.payload["error"] == "admission queue full"
        release.set()
        for t in threads:
            t.join()
        assert all(r.status == 200 for r in results.values())
        for c in clients:
            c.close()

    def test_batch_admission_is_atomic(self, slow_gateway):
        gateway, host, port, release, calls = slow_gateway
        with GatewayClient(host, port) as c:
            # 3 distinct queries exceed max_inflight=2: the whole batch
            # is refused, nothing is admitted.
            reply = c.infer_batch([_point_query(i) for i in range(3)])
            assert reply.status == 429
            assert GatewayClient(host, port).healthz().payload["admitted"] == 0

    def test_bad_payloads_rejected_before_admission(self, slow_gateway):
        gateway, host, port, release, calls = slow_gateway
        with GatewayClient(host, port) as c:
            assert c.request("POST", "/v1/infer", {"query": "nope"}).status == 400
            assert c.infer(_point_query(1), k=0).status == 400
            assert (
                c.request("POST", "/v1/infer", {"query": [[0.0, 0.0, 0.0]]}).status
                == 400
            )
            assert c.request("GET", "/missing").status == 404
            assert c.request("DELETE", "/healthz").status == 405
        assert not calls  # nothing malformed reached a worker


class TestCoalescing:
    def test_duplicate_in_flight_computes_once(self, slow_gateway):
        gateway, host, port, release, calls = slow_gateway
        results = {}

        def fire(name):
            with GatewayClient(host, port) as c:
                results[name] = c.infer(_point_query(7))

        leader = threading.Thread(target=fire, args=("leader",))
        leader.start()
        assert _wait_until(lambda: len(calls) == 1)
        followers = [
            threading.Thread(target=fire, args=(f"f{i}",)) for i in range(3)
        ]
        for t in followers:
            t.start()
        # Wait until all followers are connected (their requests attach to
        # the leader's in-flight future; the coalesced counter only ticks
        # once responses go out).  leader + 3 followers + this probe = 5.
        with GatewayClient(host, port) as probe:
            assert _wait_until(
                lambda: probe.metrics().payload["gateway"]["connections"] >= 5
            )
        time.sleep(0.2)
        release.set()
        leader.join()
        for t in followers:
            t.join()
        assert len(calls) == 1  # one computation for four requests
        with GatewayClient(host, port) as probe:
            assert (
                probe.metrics().payload["endpoints"]["/v1/infer"]["coalesced"] == 3
            )
        assert results["leader"].status == 200
        assert results["leader"].payload["coalesced"] is False
        for i in range(3):
            reply = results[f"f{i}"]
            assert reply.status == 200
            assert reply.payload["coalesced"] is True
            assert reply.payload["routes"] == results["leader"].payload["routes"]

    def test_followers_bypass_admission(self, slow_gateway):
        gateway, host, port, release, calls = slow_gateway
        results = {}

        def fire(name, i):
            with GatewayClient(host, port) as c:
                results[name] = c.infer(_point_query(i))

        threads = [
            threading.Thread(target=fire, args=("a", 1)),
            threading.Thread(target=fire, args=("b", 2)),
        ]
        threads[0].start()
        assert _wait_until(lambda: len(calls) == 1)  # worker took "a"
        threads[1].start()
        assert _wait_until(
            lambda: GatewayClient(host, port).healthz().payload["admitted"] == 2
        )
        # Saturated for new work — but a duplicate of an admitted query
        # attaches to its future instead of being shed.
        dup = threading.Thread(target=fire, args=("dup", 2))
        dup.start()
        with GatewayClient(host, port) as probe:
            assert _wait_until(
                lambda: probe.metrics().payload["gateway"]["connections"] >= 4
            )
        time.sleep(0.2)
        release.set()
        for t in threads + [dup]:
            t.join()
        assert results["dup"].status == 200
        assert results["dup"].payload["coalesced"] is True
        assert len(calls) == 2


class TestDrain:
    def test_drain_completes_in_flight_work(self, slow_gateway):
        gateway, host, port, release, calls = slow_gateway
        result = {}

        def fire():
            with GatewayClient(host, port) as c:
                result["reply"] = c.infer(_point_query(5))

        worker = threading.Thread(target=fire)
        worker.start()
        assert _wait_until(lambda: len(calls) == 1)
        gateway.begin_drain()
        assert _wait_until(lambda: _refuses_connections(host, port))
        release.set()
        worker.join()
        reply = result["reply"]
        assert reply.status == 200  # in-flight work finished, not dropped
        assert reply.headers.get("connection") == "close"
        gateway.stop()

    def test_stop_idles_cleanly_with_open_keepalive_connection(self, world):
        scenario, hris, queries, direct = world
        gateway = InferenceGateway(hris_backends(hris, 1), GatewayConfig())
        host, port = gateway.start()
        idle = GatewayClient(host, port)
        assert idle.healthz().status == 200  # keep-alive socket now parked
        gateway.stop()
        assert _refuses_connections(host, port)
        idle.close()


def _refuses_connections(host, port) -> bool:
    try:
        with GatewayClient(host, port, timeout_s=1.0) as probe:
            probe.healthz()
        return False
    except OSError:
        return True


class TestMetrics:
    def test_metrics_shape(self, slow_gateway):
        gateway, host, port, release, calls = slow_gateway
        with GatewayClient(host, port) as c:
            c.healthz()
            payload = c.metrics().payload
        assert set(payload) == {"endpoints", "gateway"}
        gauges = payload["gateway"]
        for key in (
            "workers",
            "admitted",
            "queued",
            "inflight_keys",
            "connections",
            "draining",
            "max_inflight",
            "max_queue",
        ):
            assert key in gauges
        endpoint = payload["endpoints"]["/healthz"]
        assert endpoint["requests"] >= 1
        latency = endpoint["latency_s"]
        for key in ("count", "mean", "p50", "p90", "p99", "max"):
            assert key in latency
        assert latency["p50"] <= latency["p99"] <= latency["max"]

    def test_engine_counters_for_hris_backends(self, world):
        """HRIS-backed gateways expose the routing-engine counters —
        settled nodes, cache hit/miss, oracle sweeps, CH stalls — summed
        across workers; stub backends (above) omit the key entirely."""
        scenario, hris, queries, direct = world
        gateway = InferenceGateway(hris_backends(hris, 2), GatewayConfig())
        host, port = gateway.start()
        try:
            with GatewayClient(host, port) as c:
                reply = c.infer(queries[0], k=None)
                assert reply.status == 200
                payload = c.metrics().payload
        finally:
            gateway.stop()
        assert set(payload) == {"endpoints", "gateway", "engine", "archive"}
        # Both workers share one archive object: one snapshot, not a list.
        archive = payload["archive"]
        assert archive["backend"] in ("memory", "sharded")
        assert archive["n_points"] > 0
        engine = payload["engine"]
        for key in (
            "searches",
            "settled_nodes",
            "sweeps",
            "fallback_searches",
            "ch_stalls",
            "route_cache_hits",
            "route_cache_misses",
            "route_cache_evictions",
            "candidate_cache_hits",
            "candidate_cache_misses",
            "support_cache_hits",
            "support_cache_misses",
            "oracle_hits",
            "oracle_misses",
        ):
            assert key in engine
        # The served query really did route through the engine.
        assert engine["settled_nodes"] > 0
        assert engine["candidate_cache_misses"] > 0

    def test_wal_and_catchup_counters_reach_metrics(self, world, tmp_path):
        """A gateway over the remote archive surfaces the durability
        spine on ``/metrics``: per-shard WAL counters summed by the
        client plus the replica catch-up totals."""
        from repro.core.archive import convert_archive
        from repro.core.remote import ArchiveShardServer

        scenario, hris, queries, direct = world
        servers = [
            ArchiveShardServer(i, 2, 800.0, wal_dir=tmp_path / f"wal{i}").start()
            for i in range(2)
        ]
        addrs = [f"127.0.0.1:{s.address[1]}" for s in servers]
        archive = convert_archive(scenario.archive, "remote", 800.0, addrs)
        remote_hris = HRIS(scenario.network, archive, HRISConfig())
        gateway = InferenceGateway(hris_backends(remote_hris, 1), GatewayConfig())
        host, port = gateway.start()
        try:
            with GatewayClient(host, port) as c:
                payload = c.metrics().payload
        finally:
            gateway.stop()
            archive.close()
            for server in servers:
                server.stop()
        stats = payload["archive"]
        assert stats["backend"] == "remote"
        assert stats["catchups"] == 0 and stats["catchup_records"] == 0
        wal = stats["wal"]
        assert wal["reachable"] is True
        assert wal["enabled_shards"] == 2
        assert wal["records_appended"] > 0
        assert wal["unflushed_records"] == 0  # fsync=always

    def test_percentile_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50.0) == 50.0
        assert percentile(values, 99.0) == 99.0
        assert percentile(values, 100.0) == 100.0
        assert percentile([], 99.0) == 0.0
        assert percentile([3.0], 50.0) == 3.0


class TestShardConnectionPool:
    def test_pooled_remote_archive_identical_under_concurrency(self, world):
        from repro.core.archive import convert_archive
        from repro.core.remote import ArchiveShardServer

        scenario, hris, queries, direct = world
        servers = [ArchiveShardServer(i, 2, 800.0).start() for i in range(2)]
        addrs = [f"127.0.0.1:{s.address[1]}" for s in servers]
        archive = convert_archive(scenario.archive, "remote", 800.0, addrs)
        remote = None
        try:
            from repro.core.remote import RemoteShardedArchive

            remote = RemoteShardedArchive(addrs, pool_size=3)
            remote.attach_trips(scenario.archive.trajectories())
            assert remote.backend_stats()["pool_size"] == 3
            hris_remote = HRIS(scenario.network, remote, HRISConfig())
            backends = hris_backends(hris_remote, 3)
            served = {}
            errors = []

            # One thread per backend, as the gateway drives them: each
            # HRIS clone serves one request at a time, but the three
            # clones hit the pooled shard connections concurrently.
            def run(worker):
                try:
                    for idx in range(len(queries)):
                        served[(worker, idx)] = route_keys(
                            backends[worker](queries[idx], None)
                        )
                except Exception as exc:
                    errors.append(exc)

            threads = [
                threading.Thread(target=run, args=(w,)) for w in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            for (worker, idx), keys in served.items():
                assert keys == direct[idx]
        finally:
            if remote is not None:
                remote.close()
            archive.close()
            for server in servers:
                server.stop()

    def test_pool_size_validation(self):
        from repro.core.remote import RemoteShardedArchive

        with pytest.raises(ValueError, match="pool_size"):
            RemoteShardedArchive(["127.0.0.1:1"], pool_size=0)
