"""Unit tests for temporal trajectory interpolation."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.point import Point
from repro.trajectory.interpolate import position_at, resample_uniform
from repro.trajectory.model import GPSPoint, Trajectory


def straight_drive():
    # 10 m/s east, samples every 10 s.
    return Trajectory.build(
        1, [GPSPoint(Point(i * 100.0, 0.0), i * 10.0) for i in range(5)]
    )


class TestPositionAt:
    def test_clamps_before_start(self):
        t = straight_drive()
        assert position_at(t, -100.0) == Point(0, 0)

    def test_clamps_after_end(self):
        t = straight_drive()
        assert position_at(t, 10_000.0) == Point(400, 0)

    def test_exact_sample_times(self):
        t = straight_drive()
        for i in range(5):
            assert position_at(t, i * 10.0) == Point(i * 100.0, 0.0)

    def test_midpoint(self):
        t = straight_drive()
        assert position_at(t, 15.0) == Point(150.0, 0.0)

    def test_nonuniform_sampling(self):
        t = Trajectory.build(
            1,
            [
                GPSPoint(Point(0, 0), 0.0),
                GPSPoint(Point(100, 0), 40.0),
                GPSPoint(Point(100, 100), 50.0),
            ],
        )
        assert position_at(t, 20.0) == Point(50.0, 0.0)
        assert position_at(t, 45.0) == Point(100.0, 50.0)

    @given(st.floats(0.0, 40.0))
    @settings(max_examples=40)
    def test_interpolation_stays_on_path(self, t_query):
        t = straight_drive()
        p = position_at(t, t_query)
        assert p.y == 0.0
        assert 0.0 <= p.x <= 400.0
        # Constant-speed drive: x is exactly 10 * t.
        assert math.isclose(p.x, 10.0 * t_query, abs_tol=1e-9)


class TestResampleUniform:
    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            resample_uniform(straight_drive(), 0.0)

    def test_uniform_clock(self):
        out = resample_uniform(straight_drive(), 7.0)
        gaps = [b.t - a.t for a, b in zip(out.points, out.points[1:-1])]
        assert all(math.isclose(g, 7.0) for g in gaps)

    def test_endpoints_preserved(self):
        t = straight_drive()
        out = resample_uniform(t, 7.0)
        assert out[0].t == t[0].t
        assert out[len(out) - 1].t == t[4].t
        assert out[len(out) - 1].point == t[4].point

    def test_upsampling_densifies(self):
        t = straight_drive()
        out = resample_uniform(t, 1.0)
        assert len(out) > len(t)
        # Every interpolated point sits on the straight path.
        assert all(p.point.y == 0.0 for p in out.points)

    def test_single_point_passthrough(self):
        t = Trajectory.build(1, [GPSPoint(Point(0, 0), 0.0)])
        assert resample_uniform(t, 5.0) is t
