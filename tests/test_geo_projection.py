"""Unit tests for repro.geo.projection."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo.point import Point
from repro.geo.projection import EARTH_RADIUS_M, LonLatProjector, haversine_m


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_m(116.4, 39.9, 116.4, 39.9) == 0.0

    def test_one_degree_latitude(self):
        d = haversine_m(0.0, 0.0, 0.0, 1.0)
        expected = EARTH_RADIUS_M * math.pi / 180.0
        assert math.isclose(d, expected, rel_tol=1e-6)

    def test_symmetry(self):
        a = haversine_m(116.0, 39.0, 117.0, 40.0)
        b = haversine_m(117.0, 40.0, 116.0, 39.0)
        assert math.isclose(a, b)

    def test_equator_longitude_degree(self):
        d = haversine_m(0.0, 0.0, 1.0, 0.0)
        expected = EARTH_RADIUS_M * math.pi / 180.0
        assert math.isclose(d, expected, rel_tol=1e-6)


class TestProjector:
    def test_invalid_latitude(self):
        with pytest.raises(ValueError):
            LonLatProjector(0.0, 90.0)

    def test_origin_maps_to_zero(self):
        proj = LonLatProjector(116.4, 39.9)
        p = proj.to_plane(116.4, 39.9)
        assert p == Point(0.0, 0.0)

    def test_north_is_positive_y(self):
        proj = LonLatProjector(116.4, 39.9)
        assert proj.to_plane(116.4, 39.91).y > 0

    def test_east_is_positive_x(self):
        proj = LonLatProjector(116.4, 39.9)
        assert proj.to_plane(116.41, 39.9).x > 0

    @given(
        st.floats(-0.4, 0.4),
        st.floats(-0.4, 0.4),
    )
    def test_round_trip(self, dlon, dlat):
        proj = LonLatProjector(116.4, 39.9)
        lon, lat = 116.4 + dlon, 39.9 + dlat
        back_lon, back_lat = proj.to_lonlat(proj.to_plane(lon, lat))
        assert math.isclose(back_lon, lon, abs_tol=1e-9)
        assert math.isclose(back_lat, lat, abs_tol=1e-9)

    def test_planar_distance_close_to_haversine(self):
        # Within ~10 km of the origin the equirectangular error is tiny.
        proj = LonLatProjector(116.4, 39.9)
        a = proj.to_plane(116.40, 39.90)
        b = proj.to_plane(116.45, 39.95)
        planar = a.distance_to(b)
        true = haversine_m(116.40, 39.90, 116.45, 39.95)
        assert abs(planar - true) / true < 0.002
