"""Unit tests for the uncertainty metrics."""

import math

import pytest

from repro.core.kgri import GlobalRoute
from repro.eval.uncertainty import (
    UncertaintyReport,
    count_plausible_routes,
    score_entropy,
    uncertainty_report,
)
from repro.roadnet.generators import GridCityConfig, grid_city, manhattan_line
from repro.roadnet.route import Route

import numpy as np


def g(log_score, segments=(0,)):
    return GlobalRoute(
        log_score=log_score, local_indices=(0,), route=Route.of(segments)
    )


class TestCountPlausible:
    def test_invalid_args(self):
        line = manhattan_line(3)
        with pytest.raises(ValueError):
            count_plausible_routes(line, 0, 2, cap=0)
        with pytest.raises(ValueError):
            count_plausible_routes(line, 0, 2, detour_ratio=0.5)

    def test_chain_has_one_route(self):
        line = manhattan_line(5)
        assert count_plausible_routes(line, 0, 4) == 1

    def test_unreachable_is_zero(self):
        from repro.geo.point import Point
        from repro.roadnet.network import RoadNode

        line = manhattan_line(3)
        line.add_node(RoadNode(99, Point(0, 9999)))
        assert count_plausible_routes(line, 0, 99) == 0

    def test_grid_explodes(self):
        net = grid_city(
            GridCityConfig(nx=6, ny=6, drop_fraction=0.0, jitter=0.0),
            np.random.default_rng(1),
        )
        # Corner to corner on a grid: many near-shortest alternatives.
        n = count_plausible_routes(net, 0, 35, detour_ratio=1.2, cap=60)
        assert n >= 20

    def test_detour_ratio_monotone(self):
        net = grid_city(
            GridCityConfig(nx=5, ny=5, drop_fraction=0.0), np.random.default_rng(2)
        )
        tight = count_plausible_routes(net, 0, 24, detour_ratio=1.05, cap=60)
        loose = count_plausible_routes(net, 0, 24, detour_ratio=1.5, cap=60)
        assert tight <= loose


class TestScoreEntropy:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            score_entropy([])

    def test_single_route_zero(self):
        assert score_entropy([g(-5.0)]) == 0.0

    def test_uniform_is_log_k(self):
        routes = [g(2.0), g(2.0), g(2.0), g(2.0)]
        assert math.isclose(score_entropy(routes), math.log(4), rel_tol=1e-9)

    def test_dominant_route_near_zero(self):
        routes = [g(0.0), g(-50.0), g(-50.0)]
        assert score_entropy(routes) < 0.01

    def test_shift_invariant(self):
        a = [g(1.0), g(0.0)]
        b = [g(101.0), g(100.0)]
        assert math.isclose(score_entropy(a), score_entropy(b), rel_tol=1e-9)

    def test_bounded_by_log_k(self):
        routes = [g(float(-i)) for i in range(6)]
        assert 0.0 <= score_entropy(routes) <= math.log(6) + 1e-9


class TestReport:
    def test_empty_routes_raise(self):
        line = manhattan_line(3)
        with pytest.raises(ValueError):
            uncertainty_report(line, [])

    def test_report_on_chain(self):
        line = manhattan_line(5)
        routes = [g(0.0, (0, 2, 4, 6))]
        report = uncertainty_report(line, routes)
        assert report.prior_routes == 1
        assert report.posterior_routes == 1
        assert report.reduction_factor == 1.0
        assert "1 suggestions" in report.describe()

    def test_reduction_on_grid(self):
        net = grid_city(
            GridCityConfig(nx=6, ny=6, drop_fraction=0.0, jitter=0.0),
            np.random.default_rng(3),
        )
        from repro.roadnet.shortest_path import shortest_route_between_nodes

        __, route = shortest_route_between_nodes(net, 0, 35)
        routes = [
            GlobalRoute(log_score=0.0, local_indices=(0,), route=route),
            GlobalRoute(log_score=-1.0, local_indices=(1,), route=route),
        ]
        report = uncertainty_report(net, routes, detour_ratio=1.3, cap=80)
        assert report.prior_routes > report.posterior_routes
        assert report.reduction_factor > 3.0

    def test_describe_format(self):
        r = UncertaintyReport(
            prior_routes=200, posterior_routes=5, posterior_entropy=0.7
        )
        text = r.describe()
        assert "200+" in text
        assert "40x reduction" in text
