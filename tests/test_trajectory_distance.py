"""Unit and property tests for trajectory similarity measures."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.point import Point
from repro.trajectory.distance import (
    dtw_distance,
    edr_distance,
    hausdorff_distance,
    lcss_similarity,
)
from repro.trajectory.model import GPSPoint, Trajectory

coords = st.floats(-1000, 1000, allow_nan=False, allow_infinity=False)
point_lists = st.lists(st.builds(Point, coords, coords), min_size=1, max_size=12)


def as_traj(points, tid=1):
    return Trajectory.build(
        tid, [GPSPoint(p, float(i)) for i, p in enumerate(points)]
    )


LINE_A = [Point(0, 0), Point(10, 0), Point(20, 0)]
LINE_B = [Point(0, 5), Point(10, 5), Point(20, 5)]


class TestDTW:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            dtw_distance([], LINE_A)

    def test_identical_is_zero(self):
        assert dtw_distance(LINE_A, LINE_A) == 0.0

    def test_parallel_lines(self):
        assert dtw_distance(LINE_A, LINE_B) == 15.0

    def test_accepts_trajectories(self):
        assert dtw_distance(as_traj(LINE_A), as_traj(LINE_A)) == 0.0

    def test_time_shift_tolerated(self):
        # The same path sampled at different densities stays close in DTW.
        dense = [Point(float(i), 0.0) for i in range(0, 21, 1)]
        sparse = [Point(float(i), 0.0) for i in range(0, 21, 5)]
        assert dtw_distance(dense, sparse) <= 30.0

    @given(point_lists, point_lists)
    @settings(max_examples=30)
    def test_nonnegative_and_symmetric(self, a, b):
        d1 = dtw_distance(a, b)
        d2 = dtw_distance(b, a)
        assert d1 >= 0.0
        assert math.isclose(d1, d2, rel_tol=1e-9, abs_tol=1e-9)


class TestLCSS:
    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            lcss_similarity(LINE_A, LINE_B, 0.0)

    def test_identical_full_match(self):
        assert lcss_similarity(LINE_A, LINE_A, 1.0) == 1.0

    def test_disjoint_no_match(self):
        far = [Point(1e5, 1e5)]
        assert lcss_similarity(LINE_A, far, 1.0) == 0.0

    def test_parallel_lines_with_generous_epsilon(self):
        assert lcss_similarity(LINE_A, LINE_B, 6.0) == 1.0

    def test_outlier_robustness(self):
        noisy = LINE_A[:1] + [Point(9999, 9999)] + LINE_A[1:]
        assert lcss_similarity(LINE_A, noisy, 1.0) == 1.0

    @given(point_lists, point_lists, st.floats(0.1, 100))
    @settings(max_examples=30)
    def test_range_and_symmetry(self, a, b, eps):
        s = lcss_similarity(a, b, eps)
        assert 0.0 <= s <= 1.0
        assert math.isclose(s, lcss_similarity(b, a, eps), abs_tol=1e-12)


class TestEDR:
    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            edr_distance(LINE_A, LINE_B, -1.0)

    def test_identical_is_zero(self):
        assert edr_distance(LINE_A, LINE_A, 1.0) == 0

    def test_single_substitution(self):
        other = [Point(0, 0), Point(500, 500), Point(20, 0)]
        assert edr_distance(LINE_A, other, 1.0) == 1

    def test_length_difference_costs_insertions(self):
        assert edr_distance(LINE_A, LINE_A[:1], 1.0) == 2

    @given(point_lists, point_lists, st.floats(0.1, 100))
    @settings(max_examples=30)
    def test_bounds(self, a, b, eps):
        d = edr_distance(a, b, eps)
        assert 0 <= d <= max(len(a), len(b))
        assert d == edr_distance(b, a, eps)


class TestHausdorff:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            hausdorff_distance([], LINE_A)

    def test_identical_is_zero(self):
        assert hausdorff_distance(LINE_A, LINE_A) == 0.0

    def test_parallel_lines(self):
        assert hausdorff_distance(LINE_A, LINE_B) == 5.0

    def test_subset_asymmetry_resolved(self):
        # One extra far point dominates the symmetric distance.
        extended = LINE_A + [Point(100, 0)]
        assert hausdorff_distance(LINE_A, extended) == 80.0

    @given(point_lists, point_lists)
    @settings(max_examples=30)
    def test_symmetric(self, a, b):
        assert math.isclose(
            hausdorff_distance(a, b), hausdorff_distance(b, a), rel_tol=1e-9
        )
