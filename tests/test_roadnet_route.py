"""Unit tests for repro.roadnet.route."""

import pytest

from repro.geo.point import Point
from repro.roadnet.generators import manhattan_line
from repro.roadnet.route import Route


@pytest.fixture()
def line():
    # 5 nodes in a row, segments 0,2,4,6 eastbound and 1,3,5,7 westbound.
    return manhattan_line(n_nodes=5, spacing=100.0)


class TestBasics:
    def test_empty(self):
        r = Route.empty()
        assert len(r) == 0
        assert not r
        assert list(r) == []

    def test_of_and_contains(self):
        r = Route.of([0, 2, 4])
        assert len(r) == 3
        assert 2 in r
        assert 3 not in r

    def test_first_last(self):
        r = Route.of([0, 2, 4])
        assert r.first == 0
        assert r.last == 4

    def test_first_of_empty_raises(self):
        with pytest.raises(IndexError):
            __ = Route.empty().first


class TestNetworkQueries:
    def test_endpoints(self, line):
        r = Route.of([0, 2, 4])
        assert r.start_node(line) == 0
        assert r.end_node(line) == 3
        assert r.start_point(line) == Point(0, 0)
        assert r.end_point(line) == Point(300, 0)

    def test_length(self, line):
        assert Route.of([0, 2, 4]).length(line) == 300.0
        assert Route.empty().length(line) == 0.0

    def test_is_connected(self, line):
        assert Route.of([0, 2, 4]).is_connected(line)
        assert not Route.of([0, 4]).is_connected(line)

    def test_validate_raises_with_message(self, line):
        with pytest.raises(ValueError, match="route break"):
            Route.of([0, 4]).validate(line)

    def test_node_sequence(self, line):
        assert Route.of([0, 2, 4]).node_sequence(line) == [0, 1, 2, 3]

    def test_points_concatenates_dedup(self, line):
        pts = Route.of([0, 2]).points(line)
        assert pts == [Point(0, 0), Point(100, 0), Point(200, 0)]


class TestCombinators:
    def test_concat_plain(self):
        assert Route.of([1, 2]).concat(Route.of([3])).segment_ids == (1, 2, 3)

    def test_concat_drops_shared_junction(self):
        assert Route.of([1, 2]).concat(Route.of([2, 3])).segment_ids == (1, 2, 3)

    def test_concat_with_empty(self):
        r = Route.of([1])
        assert r.concat(Route.empty()) == r
        assert Route.empty().concat(r) == r

    def test_dedupe_consecutive(self):
        assert Route.of([1, 1, 2, 2, 2, 1]).dedupe_consecutive().segment_ids == (
            1,
            2,
            1,
        )

    def test_dedupe_empty(self):
        assert Route.empty().dedupe_consecutive() == Route.empty()
