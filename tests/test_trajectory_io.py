"""Round-trip tests for trajectory serialisation."""

import json

import pytest

from repro.geo.point import Point
from repro.trajectory.io import (
    load_trajectories,
    save_trajectories,
    trajectory_from_dict,
    trajectory_to_dict,
)
from repro.trajectory.model import GPSPoint, Trajectory


def sample_traj(tid=7):
    return Trajectory.build(
        tid,
        [
            GPSPoint(Point(0.5, 1.25), 10.0),
            GPSPoint(Point(100.0, -3.0), 40.0),
            GPSPoint(Point(250.75, 8.5), 95.0),
        ],
    )


class TestDictRoundTrip:
    def test_round_trip(self):
        t = sample_traj()
        restored = trajectory_from_dict(trajectory_to_dict(t))
        assert restored.traj_id == t.traj_id
        assert restored.points == t.points

    def test_missing_keys_raise(self):
        with pytest.raises(ValueError):
            trajectory_from_dict({"points": []})
        with pytest.raises(ValueError):
            trajectory_from_dict({"id": 1})

    def test_unordered_timestamps_raise(self):
        with pytest.raises(ValueError):
            trajectory_from_dict({"id": 1, "points": [[0, 0, 5.0], [1, 1, 3.0]]})

    def test_json_serialisable(self):
        payload = json.dumps(trajectory_to_dict(sample_traj()))
        assert "points" in payload


class TestFileRoundTrip:
    def test_save_and_load(self, tmp_path):
        trips = [sample_traj(1), sample_traj(2), sample_traj(3)]
        path = tmp_path / "trips.jsonl"
        count = save_trajectories(trips, path)
        assert count == 3
        loaded = load_trajectories(path)
        assert len(loaded) == 3
        for a, b in zip(trips, loaded):
            assert a.traj_id == b.traj_id
            assert a.points == b.points

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        save_trajectories([], path)
        assert load_trajectories(path) == []

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trips.jsonl"
        save_trajectories([sample_traj()], path)
        with open(path, "a") as f:
            f.write("\n\n")
        assert len(load_trajectories(path)) == 1
