"""Unit tests for the synthetic road-network generators."""

import numpy as np
import pytest

from repro.geo.point import Point
from repro.roadnet.connectivity import network_strongly_connected
from repro.roadnet.generators import (
    ARTERIAL_SPEED,
    HIGHWAY_SPEED,
    LOCAL_SPEED,
    GridCityConfig,
    grid_city,
    manhattan_line,
    ring_radial_city,
)


class TestGridCityConfig:
    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError):
            GridCityConfig(nx=1, ny=5)

    def test_rejects_bad_drop_fraction(self):
        with pytest.raises(ValueError):
            GridCityConfig(drop_fraction=0.7)

    def test_rejects_bad_spacing(self):
        with pytest.raises(ValueError):
            GridCityConfig(spacing=0.0)


class TestGridCity:
    def test_deterministic_given_seed(self):
        a = grid_city(GridCityConfig(nx=6, ny=6), np.random.default_rng(11))
        b = grid_city(GridCityConfig(nx=6, ny=6), np.random.default_rng(11))
        assert a.num_segments == b.num_segments
        assert {s.segment_id for s in a.segments()} == {
            s.segment_id for s in b.segments()
        }

    def test_node_count(self):
        net = grid_city(GridCityConfig(nx=5, ny=7, drop_fraction=0.0))
        assert net.num_nodes == 35

    def test_full_grid_segment_count(self):
        cfg = GridCityConfig(nx=4, ny=4, drop_fraction=0.0, one_way_fraction=0.0)
        net = grid_city(cfg)
        # 2 * (nx-1) * ny horizontal + 2 * nx * (ny-1) vertical directed.
        assert net.num_segments == 2 * (3 * 4) + 2 * (4 * 3)

    def test_strongly_connected_with_drops(self):
        cfg = GridCityConfig(nx=8, ny=8, drop_fraction=0.3 - 1e-9)
        net = grid_city(cfg, np.random.default_rng(17))
        assert network_strongly_connected(net)

    def test_strongly_connected_with_one_ways(self):
        cfg = GridCityConfig(nx=6, ny=6, drop_fraction=0.05, one_way_fraction=0.3)
        net = grid_city(cfg, np.random.default_rng(19))
        assert network_strongly_connected(net)

    def test_arterials_have_higher_speed(self):
        cfg = GridCityConfig(nx=11, ny=11, arterial_every=5, drop_fraction=0.0, jitter=0.0)
        net = grid_city(cfg)
        speeds = {s.speed_limit for s in net.segments()}
        assert speeds == {LOCAL_SPEED, ARTERIAL_SPEED}

    def test_no_arterials_when_disabled(self):
        cfg = GridCityConfig(nx=5, ny=5, arterial_every=0, drop_fraction=0.0)
        net = grid_city(cfg)
        assert {s.speed_limit for s in net.segments()} == {LOCAL_SPEED}

    def test_jitter_moves_nodes(self):
        jittered = grid_city(
            GridCityConfig(nx=4, ny=4, jitter=50.0, drop_fraction=0.0),
            np.random.default_rng(23),
        )
        flat = grid_city(
            GridCityConfig(nx=4, ny=4, jitter=0.0, drop_fraction=0.0),
            np.random.default_rng(23),
        )
        moved = sum(
            1
            for a, b in zip(jittered.nodes(), flat.nodes())
            if a.point.distance_to(b.point) > 1.0
        )
        assert moved > 0


class TestRingRadial:
    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            ring_radial_city(n_rings=0)
        with pytest.raises(ValueError):
            ring_radial_city(n_spokes=2)

    def test_node_count(self):
        net = ring_radial_city(n_rings=3, n_spokes=8)
        assert net.num_nodes == 1 + 3 * 8

    def test_strongly_connected(self):
        assert network_strongly_connected(ring_radial_city())

    def test_outer_ring_is_highway(self):
        net = ring_radial_city(n_rings=2, n_spokes=6)
        speeds = {s.speed_limit for s in net.segments()}
        assert HIGHWAY_SPEED in speeds


class TestManhattanLine:
    def test_rejects_single_node(self):
        with pytest.raises(ValueError):
            manhattan_line(1)

    def test_structure(self):
        net = manhattan_line(4, spacing=50.0)
        assert net.num_nodes == 4
        assert net.num_segments == 6
        assert network_strongly_connected(net)
        assert net.node(3).point == Point(150.0, 0.0)
