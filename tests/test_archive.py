"""Unit tests for the trajectory archive."""

import pytest

from repro.core.archive import ArchivePoint, TrajectoryArchive
from repro.geo.bbox import BBox
from repro.geo.point import Point
from repro.trajectory.model import GPSPoint, Trajectory


def traj(coords, tid=1, dt=30.0):
    return Trajectory.build(
        tid, [GPSPoint(Point(x, y), i * dt) for i, (x, y) in enumerate(coords)]
    )


class TestBuilding:
    def test_add_reassigns_ids(self):
        a = TrajectoryArchive()
        id1 = a.add(traj([(0, 0), (1, 1)], tid=99))
        id2 = a.add(traj([(2, 2), (3, 3)], tid=99))
        assert id1 != id2
        assert a.trajectory(id1).traj_id == id1

    def test_from_trips(self):
        a = TrajectoryArchive.from_trips([traj([(0, 0), (1, 1)]), traj([(2, 2), (3, 3)])])
        assert len(a) == 2
        assert a.num_points == 4

    def test_contains(self):
        a = TrajectoryArchive()
        tid = a.add(traj([(0, 0), (1, 1)]))
        assert tid in a
        assert 9999 not in a

    def test_from_raw_logs_partitions(self):
        # One log with a long stay in the middle becomes two trips.
        pts = []
        t = 0.0
        for i in range(5):
            pts.append(GPSPoint(Point(i * 300.0, 0.0), t))
            t += 30.0
        for i in range(7):
            pts.append(GPSPoint(Point(1500.0, 0.0), t))
            t += 300.0
        for i in range(5):
            pts.append(GPSPoint(Point(1600.0 + i * 300.0, 0.0), t))
            t += 30.0
        log = Trajectory.build(5, pts)
        a = TrajectoryArchive.from_raw_logs([log])
        assert len(a) == 2


class TestQueries:
    def test_point_accessor(self):
        a = TrajectoryArchive()
        tid = a.add(traj([(0, 0), (5, 5)]))
        p = a.point(ArchivePoint(tid, 1))
        assert p.point == Point(5, 5)

    def test_points_near(self):
        a = TrajectoryArchive()
        a.add(traj([(0, 0), (100, 0)]))
        a.add(traj([(5000, 5000), (5100, 5000)]))
        hits = a.points_near(Point(0, 0), 150.0)
        assert len(hits) == 2
        assert all(h.traj_id == 0 for h in hits)

    def test_trajectories_near_groups_and_sorts(self):
        a = TrajectoryArchive()
        a.add(traj([(0, 0), (10, 0), (20, 0)]))
        hits = a.trajectories_near(Point(10, 0), 100.0)
        assert hits == {0: [0, 1, 2]}

    def test_trajectories_near_pair_matches_two_single_queries(self):
        a = TrajectoryArchive()
        a.add(traj([(0, 0), (10, 0), (20, 0)]))
        a.add(traj([(400, 0), (410, 0)]))
        a.add(traj([(5000, 5000), (5100, 5000)]))
        qi, qi1 = Point(10, 0), Point(405, 0)
        near_i, near_j = a.trajectories_near_pair(qi, qi1, 100.0)
        assert near_i == a.trajectories_near(qi, 100.0)
        assert near_j == a.trajectories_near(qi1, 100.0)

    def test_index_invalidated_on_add(self):
        a = TrajectoryArchive()
        a.add(traj([(0, 0), (10, 0)]))
        assert len(a.points_near(Point(500, 0), 50.0)) == 0
        a.add(traj([(500, 0), (510, 0)]))
        assert len(a.points_near(Point(500, 0), 50.0)) == 2

    def test_density(self):
        a = TrajectoryArchive()
        a.add(traj([(100, 100), (200, 200), (300, 300), (400, 400)]))
        box = BBox(0, 0, 1000, 1000)
        assert a.density_per_km2(box) == 4.0

    def test_density_zero_area(self):
        a = TrajectoryArchive()
        assert a.density_per_km2(BBox(0, 0, 0, 10)) == 0.0


class TestIncrementalIndex:
    """Mutations after the first query must update the R-tree in place."""

    def test_add_inserts_into_existing_index(self):
        a = TrajectoryArchive()
        a.add(traj([(0, 0), (10, 0)]))
        assert len(a.points_near(Point(0, 0), 50.0)) == 2
        index_before = a._index
        assert index_before is not None
        a.add(traj([(500, 0), (510, 0)]))
        assert a._index is index_before  # no rebuild
        assert len(a.points_near(Point(500, 0), 50.0)) == 2
        assert len(a._index) == 4

    def test_remove_deletes_from_existing_index(self):
        a = TrajectoryArchive()
        tid = a.add(traj([(0, 0), (10, 0)]))
        a.add(traj([(500, 0), (510, 0)]))
        assert len(a.points_near(Point(0, 0), 50.0)) == 2
        index_before = a._index
        assert a.remove(tid)
        assert a._index is index_before  # condensed, not discarded
        assert a.points_near(Point(0, 0), 50.0) == []
        assert len(a._index) == 2

    def test_mutation_before_first_query_stays_lazy(self):
        a = TrajectoryArchive()
        a.add(traj([(0, 0), (10, 0)]))
        assert a._index is None  # no query yet — bulk load still pending


class TestPointsInBBox:
    def test_canonical_order_and_contents(self):
        a = TrajectoryArchive()
        a.add(traj([(0, 0), (900, 0)]))
        a.add(traj([(100, 0), (5000, 5000)]))
        refs = a.points_in_bbox(BBox(-10, -10, 1000, 10))
        assert refs == [
            ArchivePoint(0, 0),
            ArchivePoint(0, 1),
            ArchivePoint(1, 0),
        ]


class TestRemoval:
    def test_remove_existing(self):
        a = TrajectoryArchive()
        tid = a.add(traj([(0, 0), (10, 0)]))
        a.add(traj([(500, 0), (510, 0)]))
        assert a.remove(tid)
        assert tid not in a
        assert len(a) == 1
        # Spatial queries reflect the removal.
        assert a.points_near(Point(0, 0), 50.0) == []
        assert len(a.points_near(Point(500, 0), 50.0)) == 2

    def test_remove_missing(self):
        a = TrajectoryArchive()
        assert not a.remove(42)
