"""Unit and property tests for K-GRI (Algorithm 3).

The central correctness property — guaranteed by the downward-closure
argument in the paper — is that the dynamic program returns exactly the
same top-K (scores) as brute-force enumeration.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kgri import brute_force_global_routes, k_gri
from repro.core.scoring import LocalRoute
from repro.roadnet.generators import manhattan_line
from repro.roadnet.route import Route


@pytest.fixture(scope="module")
def line():
    return manhattan_line(n_nodes=12, spacing=100.0)


def lr(segments, pop, support):
    return LocalRoute(
        route=Route.of(segments), popularity=pop, support=frozenset(support)
    )


def simple_stages():
    # Stage 1: two local routes; stage 2: two local routes.  Route pairs
    # sharing references get high transition confidence.
    return [
        [lr([0], 10.0, {1, 2, 3}), lr([2], 8.0, {4, 5})],
        [lr([4], 9.0, {1, 2, 3}), lr([6], 9.5, {6})],
    ]


class TestValidation:
    def test_k_zero_raises(self, line):
        with pytest.raises(ValueError):
            k_gri(line, simple_stages(), 0)

    def test_empty_stage_raises(self, line):
        with pytest.raises(ValueError):
            k_gri(line, [[], simple_stages()[1]], 1)

    def test_no_stages_raises(self, line):
        with pytest.raises(ValueError):
            k_gri(line, [], 1)

    def test_brute_force_combination_cap(self, line):
        stage = [lr([0], 1.0, {i}) for i in range(20)]
        with pytest.raises(ValueError, match="brute force"):
            brute_force_global_routes(line, [stage] * 6, 1, max_combinations=1000)


class TestBasics:
    def test_single_stage(self, line):
        stages = [simple_stages()[0]]
        got = k_gri(line, stages, 2)
        assert len(got) == 2
        assert got[0].local_indices == (0,)
        assert got[0].log_score >= got[1].log_score

    def test_transition_shapes_choice(self, line):
        # Stage-2 route 1 has slightly higher popularity but shares no
        # references with stage-1 route 0; the shared-support combination
        # must win overall.
        got = k_gri(line, simple_stages(), 1)
        assert got[0].local_indices == (0, 0)

    def test_scores_sorted(self, line):
        got = k_gri(line, simple_stages(), 4)
        scores = [g.log_score for g in got]
        assert scores == sorted(scores, reverse=True)

    def test_route_assembled_and_connected(self, line):
        stages = [
            [lr([0, 2], 5.0, {1})],
            [lr([6, 8], 5.0, {1})],
        ]
        got = k_gri(line, stages, 1)
        assert got[0].route.is_connected(line)
        assert got[0].route.first == 0
        assert got[0].route.last == 8

    def test_score_property(self, line):
        got = k_gri(line, simple_stages(), 1)[0]
        assert math.isclose(got.score, math.exp(got.log_score))

    def test_k_larger_than_combinations(self, line):
        got = k_gri(line, simple_stages(), 50)
        assert len(got) == 4  # 2 x 2 combinations exist


@st.composite
def random_stages(draw):
    n_stages = draw(st.integers(1, 4))
    stages = []
    seg = 0
    for __ in range(n_stages):
        n_routes = draw(st.integers(1, 4))
        stage = []
        for __r in range(n_routes):
            pop = draw(st.floats(0.1, 50.0))
            support = draw(st.frozensets(st.integers(0, 8), max_size=5))
            stage.append(lr([seg % 22], pop, support))
            seg += 2
        stages.append(stage)
    return stages


class TestDifferentialVsBruteForce:
    @settings(max_examples=40, deadline=None)
    @given(random_stages(), st.integers(1, 5))
    def test_same_topk_scores(self, stages, k):
        line = manhattan_line(n_nodes=12, spacing=100.0)
        dp = k_gri(line, stages, k)
        bf = brute_force_global_routes(line, stages, k)
        assert len(dp) == len(bf)
        for a, b in zip(dp, bf):
            assert math.isclose(a.log_score, b.log_score, rel_tol=1e-9, abs_tol=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(random_stages())
    def test_top1_identical_choice(self, stages):
        line = manhattan_line(n_nodes=12, spacing=100.0)
        dp = k_gri(line, stages, 1)[0]
        bf = brute_force_global_routes(line, stages, 1)[0]
        assert math.isclose(dp.log_score, bf.log_score, rel_tol=1e-9, abs_tol=1e-9)
