"""Unit tests for the SVG map renderer."""

import numpy as np
import pytest

from repro.eval.svg import PALETTE, SVGMap
from repro.geo.point import Point
from repro.roadnet.generators import GridCityConfig, grid_city, manhattan_line
from repro.roadnet.route import Route
from repro.trajectory.model import GPSPoint, Trajectory


@pytest.fixture(scope="module")
def line():
    return manhattan_line(n_nodes=5, spacing=100.0)


def small_trajectory():
    return Trajectory.build(
        1,
        [GPSPoint(Point(i * 50.0, 10.0), float(i * 30)) for i in range(5)],
    )


class TestConstruction:
    def test_bad_width_raises(self):
        with pytest.raises(ValueError):
            SVGMap(width_px=30, padding_px=20)

    def test_empty_render_raises(self):
        with pytest.raises(ValueError, match="nothing to render"):
            SVGMap().render()

    def test_route_without_network_raises(self):
        with pytest.raises(ValueError, match="requires a network"):
            SVGMap().add_route(Route.of([0]))


class TestRendering:
    def test_network_base_layer(self, line):
        doc = SVGMap(line).render()
        assert doc.startswith("<svg")
        assert doc.endswith("</svg>")
        assert doc.count("<polyline") >= line.num_segments

    def test_route_layer_and_legend(self, line):
        svg = SVGMap(line)
        svg.add_route(Route.of([0, 2, 4]), color="#ff0000", label="truth")
        doc = svg.render()
        assert "#ff0000" in doc
        assert ">truth</text>" in doc

    def test_trajectory_dots(self, line):
        svg = SVGMap(line)
        svg.add_trajectory(small_trajectory(), label="query")
        doc = svg.render()
        assert doc.count("<circle") == 5
        assert "stroke-dasharray" in doc

    def test_points_layer(self, line):
        svg = SVGMap(line)
        svg.add_points([Point(10, 10), Point(20, 20)], label="refs")
        assert svg.render().count("<circle") == 2

    def test_label_escaping(self, line):
        svg = SVGMap(line)
        svg.add_points([Point(0, 0)], label="<b>&")
        doc = svg.render()
        assert "&lt;b&gt;&amp;" in doc
        assert "<b>&" not in doc.replace("&lt;b&gt;&amp;", "")

    def test_y_axis_flipped(self, line):
        # The northernmost point must have the SMALLEST pixel y.
        svg = SVGMap(width_px=200, padding_px=10)
        svg.add_points([Point(0, 0)])
        svg.add_points([Point(0, 100)])
        doc = svg.render()
        import re

        ys = [float(m) for m in re.findall(r'cy="([0-9.]+)"', doc)]
        assert ys[1] < ys[0]

    def test_save(self, line, tmp_path):
        svg = SVGMap(line)
        svg.add_route(Route.of([0]), label="r")
        path = svg.save(tmp_path / "map.svg")
        assert path.exists()
        assert path.read_text().startswith("<svg")

    def test_city_scale_render(self):
        net = grid_city(GridCityConfig(nx=6, ny=6), np.random.default_rng(1))
        doc = SVGMap(net).render()
        # Well-formed XML.
        import xml.etree.ElementTree as ET

        ET.fromstring(doc)

    def test_palette_exported(self):
        assert len(PALETTE) >= 4
        assert all(c.startswith("#") for c in PALETTE)
