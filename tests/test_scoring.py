"""Unit tests for the scoring functions (equations 1 and 2)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reference import Reference
from repro.core.scoring import (
    compute_segment_support,
    popularity,
    route_support,
    score_local_routes,
    transition_confidence,
)
from repro.geo.point import Point
from repro.roadnet.generators import manhattan_line
from repro.roadnet.route import Route


def support_from_counts(counts):
    """Build a segment_support dict where segment i is travelled by the
    first counts[i] reference ids."""
    return {i: set(range(c)) for i, c in enumerate(counts)}


class TestPopularity:
    def test_no_support_is_zero(self):
        assert popularity(Route.of([0, 1]), {}) == 0.0

    def test_negative_floor_raises(self):
        with pytest.raises(ValueError):
            popularity(Route.of([0]), {0: {1}}, entropy_floor=-1.0)

    def test_uniform_beats_bursty_fig6(self):
        # Fig. 6: stable traffic (R_a) must outscore a burst (R_b) when the
        # total number of supporting references is the same.
        uniform = support_from_counts([4, 4, 4])
        bursty = {0: set(range(4)), 1: {0}, 2: {1}}
        r = Route.of([0, 1, 2])
        assert popularity(r, uniform) > popularity(r, bursty)

    def test_more_references_scores_higher(self):
        few = support_from_counts([2, 2, 2])
        many = support_from_counts([8, 8, 8])
        r = Route.of([0, 1, 2])
        assert popularity(r, many) > popularity(r, few)

    def test_single_segment_normalized(self):
        # A single supported segment is trivially uniform: f = |C|.
        assert popularity(Route.of([0]), {0: {0, 1, 2}}) == 3.0

    def test_single_segment_raw_formula_is_zero(self):
        # The literal equation (1): one segment has zero entropy.
        assert popularity(Route.of([0]), {0: {0, 1, 2}}, normalize=False) == 0.0

    def test_raw_formula_grows_with_length(self):
        # The documented bias of the unnormalised formula.
        short = popularity(Route.of([0, 1]), support_from_counts([3, 3]), normalize=False)
        long = popularity(
            Route.of([0, 1, 2, 3]), support_from_counts([3, 3, 3, 3]), normalize=False
        )
        assert long > short

    def test_normalized_formula_length_invariant_for_uniform(self):
        short = popularity(Route.of([0, 1]), support_from_counts([3, 3]))
        long = popularity(
            Route.of([0, 1, 2, 3]), support_from_counts([3, 3, 3, 3])
        )
        assert math.isclose(short, long)

    def test_unsupported_padding_penalised(self):
        tight = popularity(Route.of([0, 1]), support_from_counts([3, 3]))
        padded = popularity(Route.of([0, 1, 99]), support_from_counts([3, 3]))
        assert padded < tight

    def test_entropy_floor_applies(self):
        # Bursty single-dominant support would give near-zero entropy; the
        # floor keeps the score positive.
        support = {0: set(range(100)), 1: {0}}
        low = popularity(Route.of([0, 1]), support, entropy_floor=0.0, normalize=False)
        floored = popularity(
            Route.of([0, 1]), support, entropy_floor=0.5, normalize=False
        )
        assert floored >= 0.5 * 101 * 0.99 or floored > low


class TestRouteSupport:
    def test_union(self):
        support = {0: {1, 2}, 1: {2, 3}}
        assert route_support(Route.of([0, 1]), support) == frozenset({1, 2, 3})

    def test_missing_segments_ignored(self):
        assert route_support(Route.of([42]), {}) == frozenset()


class TestTransitionConfidence:
    def test_identical_sets_is_one(self):
        s = frozenset({1, 2, 3})
        assert math.isclose(transition_confidence(s, s), 1.0)

    def test_disjoint_is_inverse_e(self):
        a = frozenset({1})
        b = frozenset({2})
        assert math.isclose(transition_confidence(a, b), math.exp(-1))

    def test_both_empty_is_inverse_e(self):
        assert math.isclose(
            transition_confidence(frozenset(), frozenset()), math.exp(-1)
        )

    def test_range(self):
        a = frozenset({1, 2})
        b = frozenset({2, 3})
        g = transition_confidence(a, b)
        assert math.exp(-1) <= g <= 1.0

    def test_symmetry(self):
        a = frozenset({1, 2, 5})
        b = frozenset({2, 3})
        assert transition_confidence(a, b) == transition_confidence(b, a)

    @given(
        st.frozensets(st.integers(0, 20), max_size=10),
        st.frozensets(st.integers(0, 20), max_size=10),
    )
    def test_monotone_in_overlap(self, a, b):
        g = transition_confidence(a, b)
        assert math.exp(-1) - 1e-12 <= g <= 1.0 + 1e-12
        # Adding a shared element never decreases confidence.
        shared = frozenset({999})
        g2 = transition_confidence(a | shared, b | shared)
        assert g2 >= g - 1e-12


class TestComputeSegmentSupport:
    def test_counts_each_reference_once(self):
        line = manhattan_line(n_nodes=5, spacing=200.0)
        ref = Reference(
            ref_id=7,
            source_ids=(0,),
            points=tuple(Point(i * 100.0, 5.0) for i in range(9)),
            spliced=False,
        )
        support = compute_segment_support(line, [ref], 50.0)
        assert support
        for sids in support.values():
            assert sids == {7}

    def test_empty_references(self):
        line = manhattan_line(3)
        assert compute_segment_support(line, [], 50.0) == {}


class TestScoreLocalRoutes:
    def test_sorted_by_popularity(self):
        support = support_from_counts([5, 5, 1, 1])
        routes = [Route.of([2, 3]), Route.of([0, 1])]
        scored = score_local_routes(routes, support)
        assert scored[0].route.segment_ids == (0, 1)
        assert scored[0].popularity >= scored[1].popularity

    def test_support_recorded(self):
        support = {0: {1, 2}}
        scored = score_local_routes([Route.of([0])], support)
        assert scored[0].support == frozenset({1, 2})
