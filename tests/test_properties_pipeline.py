"""Cross-module property tests: invariants of the whole pipeline.

These use hypothesis to drive the system with randomised worlds and
queries, asserting structural invariants rather than accuracy numbers:
routes are always connected, scores always sorted, the reference search
always honours its definitions, stitching never breaks connectivity.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.reference import ReferenceSearch, ReferenceSearchConfig
from repro.core.system import HRIS, HRISConfig
from repro.eval.metrics import route_accuracy
from repro.geo.point import Point
from repro.mapmatching.base import stitch_route
from repro.roadnet.generators import GridCityConfig, grid_city
from repro.trajectory.model import GPSPoint, Trajectory
from repro.trajectory.resample import downsample

# One fixed small world for the property tests (hypothesis varies the
# queries, not the city).
_NETWORK = grid_city(GridCityConfig(nx=8, ny=8, drop_fraction=0.0), np.random.default_rng(2))
_SEGMENT_IDS = [s.segment_id for s in _NETWORK.segments()]


class TestStitchRouteProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.sampled_from(_SEGMENT_IDS), min_size=1, max_size=8))
    def test_always_connected_on_connected_network(self, segments):
        route = stitch_route(_NETWORK, segments)
        assert route.is_connected(_NETWORK)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.sampled_from(_SEGMENT_IDS), min_size=1, max_size=8))
    def test_covers_all_requested_segments_in_order(self, segments):
        route = stitch_route(_NETWORK, segments)
        # Every requested segment appears, and first occurrences respect
        # the request order (duplicates may collapse).
        positions = []
        ids = list(route.segment_ids)
        cursor = 0
        for sid in segments:
            try:
                cursor = ids.index(sid, cursor)
            except ValueError:
                pytest.fail(f"segment {sid} missing or out of order")
            positions.append(cursor)
        assert positions == sorted(positions)

    @settings(max_examples=20, deadline=None)
    @given(st.sampled_from(_SEGMENT_IDS))
    def test_single_segment_identity(self, sid):
        assert stitch_route(_NETWORK, [sid]).segment_ids == (sid,)


class TestReferenceSearchProperties:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        st.integers(0, 10_000),
        st.floats(200.0, 800.0),
    )
    def test_definition6_conditions_hold(self, seed, phi):
        """Whatever the archive, every returned simple reference satisfies
        Definition 6's three conditions."""
        rng = np.random.default_rng(seed)
        from repro.core.archive import TrajectoryArchive
        from repro.trajectory.simulate import DriveConfig, drive_route
        from repro.roadnet.shortest_path import shortest_route_between_nodes

        archive = TrajectoryArchive()
        node_ids = [n.node_id for n in _NETWORK.nodes()]
        for k in range(6):
            a, b = rng.choice(node_ids, size=2, replace=False)
            d, route = shortest_route_between_nodes(_NETWORK, int(a), int(b))
            if math.isinf(d) or not route:
                continue
            drive = drive_route(
                _NETWORK,
                route,
                k,
                config=DriveConfig(sample_interval_s=45.0, gps_sigma_m=12.0),
                rng=rng,
            )
            archive.add(drive.trajectory)
        if len(archive) == 0:
            return

        search = ReferenceSearch(
            archive, _NETWORK, ReferenceSearchConfig(phi=phi, enable_splicing=False)
        )
        qi = GPSPoint(Point(500.0, 500.0), 0.0)
        qi1 = GPSPoint(Point(2500.0, 2500.0), 600.0)
        budget = 600.0 * _NETWORK.max_speed
        for ref in search.search(qi, qi1):
            # Condition 2: anchors inside the phi circles.
            assert ref.points[0].distance_to(qi.point) <= phi + 1e-6
            assert ref.points[-1].distance_to(qi1.point) <= phi + 1e-6
            # Condition 3: the speed ellipse, for every point.
            for p in ref.points:
                assert (
                    p.distance_to(qi.point) + p.distance_to(qi1.point)
                    <= budget + 1e-6
                )


@pytest.fixture(scope="module")
def pipeline_world():
    from repro.datasets.synthetic import ScenarioConfig, build_scenario

    return build_scenario(
        ScenarioConfig(
            grid=GridCityConfig(nx=10, ny=10),
            n_od_pairs=4,
            min_od_distance=3000.0,
            n_archive_trips=60,
            n_background_trips=6,
            n_queries=4,
            seed=23,
        )
    )


class TestSystemProperties:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        st.sampled_from([120.0, 240.0, 480.0, 900.0]),
        st.integers(1, 6),
        st.integers(0, 3),
    )
    def test_output_invariants(self, pipeline_world, interval, k, query_idx):
        sc = pipeline_world
        hris = HRIS(sc.network, sc.archive, HRISConfig())
        case = sc.queries[query_idx]
        query = downsample(case.query, interval)
        if len(query) < 2:
            return
        routes = hris.infer_routes(query, k)
        assert 1 <= len(routes) <= k
        scores = [g.log_score for g in routes]
        assert scores == sorted(scores, reverse=True)
        for g in routes:
            assert g.route.is_connected(sc.network)
            assert len(g.local_indices) == len(query) - 1
            acc = route_accuracy(sc.network, case.truth, g.route)
            assert 0.0 <= acc <= 1.0
