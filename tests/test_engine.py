"""Tests for the routing engine: ALT landmarks, bounded caches and batch
inference.

The engine is a pure accelerator — every test here is ultimately an
equivalence test against the unaccelerated code path.
"""

import math

import numpy as np
import pytest

from repro.core.system import HRIS, HRISConfig
from repro.roadnet.cache import CacheStats, LRUCache
from repro.roadnet.engine import EngineConfig, RoutingEngine
from repro.roadnet.generators import GridCityConfig, grid_city
from repro.roadnet.shortest_path import (
    DistanceOracle,
    LandmarkIndex,
    astar,
    combined_heuristic,
    dijkstra,
    dijkstra_all,
    shortest_route_between_segments,
)
from repro.trajectory.resample import downsample


@pytest.fixture(scope="module")
def cities():
    """Three random grid cities — irregular enough to exercise ties."""
    nets = []
    for seed in (3, 11, 42):
        rng = np.random.default_rng(seed)
        nets.append(grid_city(GridCityConfig(nx=7, ny=7, drop_fraction=0.15), rng))
    return nets


def _node_ids(net):
    return sorted(n.node_id for n in net.nodes())


class TestLandmarkIndex:
    def test_build_is_deterministic(self, cities):
        net = cities[0]
        a = LandmarkIndex.build(net, n_landmarks=6)
        b = LandmarkIndex.build(net, n_landmarks=6)
        assert a.landmarks == b.landmarks
        assert len(a) == 6

    def test_lower_bound_admissible(self, cities):
        for net in cities:
            index = LandmarkIndex.build(net, n_landmarks=6)
            nodes = _node_ids(net)
            rng = np.random.default_rng(7)
            for source in rng.choice(nodes, size=5, replace=False):
                source = int(source)
                true = dijkstra_all(net, source)
                for target in nodes:
                    d = true.get(target)
                    if d is None:
                        continue
                    assert index.lower_bound(source, target) <= d + 1e-6

    def test_alt_astar_matches_dijkstra(self, cities):
        for net in cities:
            index = LandmarkIndex.build(net, n_landmarks=6)
            nodes = _node_ids(net)
            rng = np.random.default_rng(19)
            pairs = [
                (int(s), int(t))
                for s, t in rng.choice(nodes, size=(25, 2))
            ]
            for s, t in pairs:
                d_ref, path_ref = dijkstra(net, s, t)
                d_alt, path_alt = astar(
                    net, s, t, heuristic=combined_heuristic(net, t, index)
                )
                if math.isinf(d_ref):
                    assert math.isinf(d_alt)
                    continue
                assert d_alt == pytest.approx(d_ref, abs=1e-6)
                # The canonical tie-break makes the path a function of the
                # graph alone, regardless of the heuristic.
                assert path_alt == path_ref


class TestLRUCache:
    def test_eviction_at_capacity(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") == 3
        assert len(cache) == 2
        assert cache.stats.evictions == 1

    def test_get_refreshes_recency(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        cache.put("c", 3)  # evicts "b", the least recent
        assert cache.get("a") == 1
        assert cache.get("b") is None

    def test_stats_counters(self):
        cache = LRUCache(maxsize=4)
        assert cache.get("x") is None
        cache.put("x", 1)
        assert cache.get("x") == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.lookups == 2
        assert cache.stats.hit_rate == 0.5

    def test_maxsize_zero_disables(self):
        cache = LRUCache(maxsize=0)
        calls = []
        for __ in range(3):
            cache.get_or_compute("k", lambda: calls.append(1) or len(calls))
        assert len(calls) == 3
        assert len(cache) == 0
        assert not cache.enabled

    def test_stats_delta(self):
        stats = CacheStats(hits=5, misses=3, evictions=1)
        earlier = CacheStats(hits=2, misses=1, evictions=0)
        d = stats.delta(earlier)
        assert (d.hits, d.misses, d.evictions) == (3, 2, 1)


class TestDistanceOracle:
    def test_bounded_sources_evict(self, cities):
        net = cities[0]
        nodes = _node_ids(net)
        oracle = DistanceOracle(net, max_sources=2)
        for source in nodes[:4]:
            oracle.distance(source, nodes[-1])
        assert oracle.stats.misses == 4
        assert oracle.stats.evictions == 2

    def test_evicted_source_recomputes_identically(self, cities):
        net = cities[0]
        nodes = _node_ids(net)
        bounded = DistanceOracle(net, max_sources=1)
        unbounded = DistanceOracle(net, max_sources=None)
        s1, s2, t = nodes[0], nodes[1], nodes[-1]
        first = bounded.distance(s1, t)
        bounded.distance(s2, t)  # evicts s1's table
        assert bounded.distance(s1, t) == first == unbounded.distance(s1, t)


class TestRoutingEngine:
    def test_routes_match_plain_function(self, cities):
        net = cities[1]
        engine = RoutingEngine(net, EngineConfig(n_landmarks=4))
        sids = sorted(s.segment_id for s in net.segments())
        rng = np.random.default_rng(5)
        for a, b in rng.choice(sids, size=(20, 2)):
            gap, route = engine.shortest_route_between_segments(int(a), int(b))
            gap_ref, route_ref = shortest_route_between_segments(net, int(a), int(b))
            assert gap == pytest.approx(gap_ref)
            assert route.segment_ids == route_ref.segment_ids

    def test_candidate_cache_hits_and_copies(self, cities):
        net = cities[1]
        engine = RoutingEngine(net, EngineConfig())
        p = net.node(_node_ids(net)[0]).point
        first = engine.candidate_edges(p, 60.0)
        second = engine.candidate_edges(p, 60.0)
        assert [c.segment.segment_id for c in first] == [
            c.segment.segment_id for c in second
        ]
        assert first is not second  # callers may mutate their copy
        assert engine.stats().candidate_cache.hits >= 1
        assert [c.segment.segment_id for c in first] == [
            c.segment.segment_id for c in net.candidate_edges(p, 60.0)
        ]


@pytest.fixture(scope="module")
def batch_setup(corridor_world):
    hris = HRIS(corridor_world.network, corridor_world.archive, HRISConfig())
    queries = [
        downsample(corridor_world.query, interval)
        for interval in (120.0, 180.0, 240.0)
    ]
    return hris, [q for q in queries if len(q) >= 2]


def _route_keys(results):
    return [
        [(g.route.segment_ids, g.log_score) for g in routes] for routes in results
    ]


class TestBatchInference:
    def test_workers_one_equals_sequential(self, batch_setup):
        hris, queries = batch_setup
        sequential = [hris.infer_routes(q) for q in queries]
        batch = hris.infer_routes_batch(queries, workers=1)
        assert _route_keys(batch) == _route_keys(sequential)

    def test_forked_pool_equals_sequential(self, batch_setup):
        hris, queries = batch_setup
        try:
            import multiprocessing

            multiprocessing.get_context("fork")
        except ValueError:
            pytest.skip("fork start method unavailable")
        sequential = [hris.infer_routes(q) for q in queries]
        batch = hris.infer_routes_batch(
            queries, workers=2, use_processes=True
        )
        assert _route_keys(batch) == _route_keys(sequential)

    def test_empty_batch(self, batch_setup):
        hris, __ = batch_setup
        assert hris.infer_routes_batch([], workers=4) == []


class TestEngineEquivalence:
    def test_engine_matches_seed_configuration(self, corridor_world):
        """The tentpole claim: caches and landmarks change nothing."""
        seed_cfg = HRISConfig(
            n_landmarks=0,
            route_cache_size=0,
            candidate_cache_size=0,
            support_cache_size=0,
        )
        h_seed = HRIS(corridor_world.network, corridor_world.archive, seed_cfg)
        h_eng = HRIS(corridor_world.network, corridor_world.archive, HRISConfig())
        query = downsample(corridor_world.query, 180.0)
        assert _route_keys([h_eng.infer_routes(query)]) == _route_keys(
            [h_seed.infer_routes(query)]
        )

    def test_details_carry_engine_stats(self, corridor_world):
        hris = HRIS(corridor_world.network, corridor_world.archive, HRISConfig())
        query = downsample(corridor_world.query, 180.0)
        __, detail = hris.infer_routes_with_details(query, 2)
        assert detail.engine is not None
        assert detail.engine.searches >= 0
        combined = detail.engine.as_dict()
        assert "route_cache_hits" in combined and "oracle_misses" in combined
