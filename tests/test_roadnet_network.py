"""Unit tests for repro.roadnet.network."""

import math

import pytest

from repro.geo.point import Point
from repro.roadnet.network import RoadNetwork, RoadNode, RoadSegment


def two_way_square():
    """A unit square block with bidirectional streets, 100 m sides."""
    net = RoadNetwork()
    corners = [Point(0, 0), Point(100, 0), Point(100, 100), Point(0, 100)]
    for i, p in enumerate(corners):
        net.add_node(RoadNode(i, p))
    sid = 0
    for a, b in [(0, 1), (1, 2), (2, 3), (3, 0)]:
        pa, pb = corners[a], corners[b]
        net.add_segment(RoadSegment.build(sid, a, b, [pa, pb], 10.0))
        sid += 1
        net.add_segment(RoadSegment.build(sid, b, a, [pb, pa], 10.0))
        sid += 1
    return net


class TestSegment:
    def test_build_derives_length(self):
        seg = RoadSegment.build(0, 0, 1, [Point(0, 0), Point(3, 0), Point(3, 4)], 10.0)
        assert seg.length == 7.0

    def test_build_requires_two_points(self):
        with pytest.raises(ValueError):
            RoadSegment.build(0, 0, 1, [Point(0, 0)], 10.0)

    def test_build_requires_positive_speed(self):
        with pytest.raises(ValueError):
            RoadSegment.build(0, 0, 1, [Point(0, 0), Point(1, 0)], 0.0)

    def test_distance_to_point(self):
        seg = RoadSegment.build(0, 0, 1, [Point(0, 0), Point(10, 0)], 10.0)
        assert seg.distance_to_point(Point(5, 3)) == 3.0

    def test_travel_time(self):
        seg = RoadSegment.build(0, 0, 1, [Point(0, 0), Point(100, 0)], 20.0)
        assert seg.travel_time == 5.0

    def test_point_at(self):
        seg = RoadSegment.build(0, 0, 1, [Point(0, 0), Point(10, 0)], 10.0)
        assert seg.point_at(4.0) == Point(4, 0)


class TestNetworkTopology:
    def test_counts(self):
        net = two_way_square()
        assert net.num_nodes == 4
        assert net.num_segments == 8

    def test_duplicate_node_raises(self):
        net = two_way_square()
        with pytest.raises(ValueError):
            net.add_node(RoadNode(0, Point(0, 0)))

    def test_duplicate_segment_raises(self):
        net = two_way_square()
        seg = RoadSegment.build(0, 0, 1, [Point(0, 0), Point(1, 0)], 10.0)
        with pytest.raises(ValueError):
            net.add_segment(seg)

    def test_unknown_node_raises(self):
        net = two_way_square()
        seg = RoadSegment.build(99, 0, 77, [Point(0, 0), Point(1, 0)], 10.0)
        with pytest.raises(ValueError):
            net.add_segment(seg)

    def test_out_in_segments(self):
        net = two_way_square()
        # Each corner has two outgoing and two incoming segments.
        for node in range(4):
            assert len(net.out_segments(node)) == 2
            assert len(net.in_segments(node)) == 2

    def test_successors_follow_connectivity(self):
        net = two_way_square()
        for seg in net.segments():
            for succ in net.successors(seg.segment_id):
                assert net.are_connected(seg.segment_id, succ)

    def test_predecessors_inverse_of_successors(self):
        net = two_way_square()
        for seg in net.segments():
            for succ in net.successors(seg.segment_id):
                assert seg.segment_id in net.predecessors(succ)

    def test_reverse_of(self):
        net = two_way_square()
        rev = net.reverse_of(0)
        assert rev is not None
        a, b = net.segment(0), net.segment(rev)
        assert (a.start, a.end) == (b.end, b.start)

    def test_reverse_of_one_way_is_none(self):
        net = RoadNetwork()
        net.add_node(RoadNode(0, Point(0, 0)))
        net.add_node(RoadNode(1, Point(100, 0)))
        net.add_segment(
            RoadSegment.build(0, 0, 1, [Point(0, 0), Point(100, 0)], 10.0)
        )
        assert net.reverse_of(0) is None

    def test_max_speed(self):
        net = two_way_square()
        assert net.max_speed == 10.0

    def test_bbox(self):
        b = two_way_square().bbox()
        assert (b.min_x, b.min_y, b.max_x, b.max_y) == (0, 0, 100, 100)


class TestGeometricQueries:
    def test_candidate_edges_radius(self):
        net = two_way_square()
        # Point near the bottom street: both directions are candidates.
        cands = net.candidate_edges(Point(50, 5), 10.0)
        assert len(cands) == 2
        assert all(c.distance == 5.0 for c in cands)

    def test_candidate_edges_sorted_by_distance(self):
        net = two_way_square()
        cands = net.candidate_edges(Point(50, 20), 200.0)
        dists = [c.distance for c in cands]
        assert dists == sorted(dists)

    def test_candidate_edges_empty_outside(self):
        net = two_way_square()
        assert net.candidate_edges(Point(50, 50), 10.0) == []

    def test_candidate_edges_after_mutation(self):
        # The lazy index must invalidate on mutation.
        net = two_way_square()
        assert len(net.candidate_edges(Point(50, 50), 10.0)) == 0
        net.add_node(RoadNode(4, Point(50, 40)))
        net.add_node(RoadNode(5, Point(50, 60)))
        net.add_segment(
            RoadSegment.build(100, 4, 5, [Point(50, 40), Point(50, 60)], 10.0)
        )
        assert len(net.candidate_edges(Point(50, 50), 10.0)) == 1

    def test_nearest_segments(self):
        net = two_way_square()
        got = net.nearest_segments(Point(50, -200), 2)
        assert len(got) == 2
        assert {c.segment.segment_id for c in got} == {0, 1}

    def test_nearest_segments_k_zero(self):
        assert two_way_square().nearest_segments(Point(0, 0), 0) == []

    def test_nearest_node(self):
        net = two_way_square()
        assert net.nearest_node(Point(95, 95)).node_id == 2

    def test_projection_on_candidate(self):
        net = two_way_square()
        cand = net.candidate_edges(Point(30, 2), 10.0)[0]
        assert math.isclose(cand.projection.point.x, 30.0, abs_tol=1e-9)
