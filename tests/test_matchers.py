"""Behavioural tests for the four map matchers.

All matchers share one contract: given a trajectory simulated on a known
route, the matched route should recover (most of) that route.  Easy cases
must be recovered perfectly; harder cases (noise, downsampling) must retain
high accuracy.  The matchers are also checked for their specific design
properties (e.g. HMM resistance to outliers, ST-matching's temporal term).
"""

import math

import numpy as np
import pytest

from repro.eval.metrics import route_accuracy
from repro.mapmatching import (
    HMMConfig,
    HMMMatcher,
    IncrementalConfig,
    IncrementalMatcher,
    IVMMConfig,
    IVMMMatcher,
    STMatcher,
    STMatchingConfig,
)
from repro.roadnet.generators import GridCityConfig, grid_city
from repro.roadnet.shortest_path import shortest_route_between_nodes
from repro.trajectory.resample import downsample
from repro.trajectory.simulate import DriveConfig, drive_route


@pytest.fixture(scope="module")
def city():
    return grid_city(GridCityConfig(nx=10, ny=10, drop_fraction=0.05), np.random.default_rng(41))


@pytest.fixture(scope="module")
def drives(city):
    rng = np.random.default_rng(43)
    cases = []
    for src, dst in [(0, 99), (5, 94), (20, 77)]:
        __, route = shortest_route_between_nodes(city, src, dst)
        d = drive_route(
            city,
            route,
            traj_id=src,
            config=DriveConfig(sample_interval_s=15.0, gps_sigma_m=12.0),
            rng=rng,
        )
        cases.append(d)
    return cases


ALL_MATCHERS = [
    ("incremental", lambda net: IncrementalMatcher(net)),
    ("st", lambda net: STMatcher(net)),
    ("ivmm", lambda net: IVMMMatcher(net)),
    ("hmm", lambda net: HMMMatcher(net)),
]


class TestMatcherContract:
    @pytest.mark.parametrize("name,factory", ALL_MATCHERS)
    def test_high_rate_recovery(self, city, drives, name, factory):
        # A_L charges the endpoint-segment overhang (the first/last GPS
        # points sit on junctions), so even a perfect interior match scores
        # below 1; the greedy incremental baseline is additionally weaker by
        # design.
        floor = 0.55 if name == "incremental" else 0.8
        matcher = factory(city)
        for d in drives:
            result = matcher.match(d.trajectory)
            acc = route_accuracy(city, d.route, result.route)
            assert acc > floor, f"{name} accuracy {acc:.3f} on high-rate input"
            # Everything of the true route must be recovered.
            from repro.eval.metrics import precision_recall

            __, recall = precision_recall(city, d.route, result.route)
            assert recall > 0.9

    @pytest.mark.parametrize("name,factory", ALL_MATCHERS)
    def test_matched_per_point(self, city, drives, name, factory):
        matcher = factory(city)
        result = matcher.match(drives[0].trajectory)
        assert len(result.matched) == len(drives[0].trajectory)
        assert all(c is not None for c in result.matched)

    @pytest.mark.parametrize("name,factory", ALL_MATCHERS)
    def test_route_connected(self, city, drives, name, factory):
        matcher = factory(city)
        result = matcher.match(drives[0].trajectory)
        assert result.route.is_connected(city)

    @pytest.mark.parametrize("name,factory", ALL_MATCHERS)
    def test_single_point_trajectory(self, city, drives, name, factory):
        matcher = factory(city)
        single = drives[0].trajectory.slice(0, 0)
        result = matcher.match(single)
        assert len(result.matched) == 1
        assert result.matched[0] is not None

    @pytest.mark.parametrize("name,factory", ALL_MATCHERS)
    def test_moderate_downsampling(self, city, drives, name, factory):
        matcher = factory(city)
        floor = 0.55 if name == "incremental" else 0.7
        accs = []
        for d in drives:
            low = downsample(d.trajectory, 90.0)
            result = matcher.match(low)
            accs.append(route_accuracy(city, d.route, result.route))
        assert np.mean(accs) > floor, f"{name} mean acc {np.mean(accs):.3f} at 90 s"


class TestMatcherDegradation:
    @pytest.mark.parametrize("name,factory", ALL_MATCHERS)
    def test_accuracy_decreases_with_interval(self, city, drives, name, factory):
        matcher = factory(city)

        def mean_acc(interval):
            accs = []
            for d in drives:
                q = downsample(d.trajectory, interval) if interval else d.trajectory
                accs.append(route_accuracy(city, d.route, matcher.match(q).route))
            return float(np.mean(accs))

        # Accuracy at high rate should not be (much) worse than at 5 min.
        margin = 0.2 if name == "incremental" else 0.05
        assert mean_acc(None) >= mean_acc(300.0) - margin


class TestSpecificBehaviours:
    def test_hmm_outlier_resilience(self, city, drives):
        """One wild GPS outlier shouldn't destroy the HMM route."""
        from repro.geo.point import Point
        from repro.trajectory.model import GPSPoint, Trajectory

        d = drives[0]
        pts = list(d.trajectory.points)
        mid = len(pts) // 2
        outlier = GPSPoint(Point(pts[mid].x + 120.0, pts[mid].y + 120.0), pts[mid].t)
        noisy = Trajectory(1, tuple(pts[:mid] + [outlier] + pts[mid + 1 :]))
        acc = route_accuracy(city, d.route, HMMMatcher(city).match(noisy).route)
        assert acc > 0.8

    def test_st_temporal_term_in_unit_range(self, city):
        matcher = STMatcher(city)
        from repro.mapmatching.base import find_candidates
        from repro.geo.point import Point

        a = find_candidates(city, city.node(0).point, 100.0)[0]
        b = find_candidates(city, city.node(1).point, 100.0)[0]
        f_t = matcher._temporal(a, b, d_route=500.0, dt=60.0)
        assert 0.0 <= f_t <= 1.0 + 1e-9

    def test_incremental_config_validation_defaults(self):
        cfg = IncrementalConfig()
        assert cfg.radius > 0 and cfg.max_candidates > 0

    def test_configs_are_frozen(self):
        for cfg in (IncrementalConfig(), STMatchingConfig(), IVMMConfig(), HMMConfig()):
            with pytest.raises(Exception):
                cfg.radius = 1.0  # type: ignore[misc]


class TestGeometricBaseline:
    def test_recovers_easy_route(self, city, drives):
        from repro.mapmatching import GeometricMatcher

        matcher = GeometricMatcher(city)
        d = drives[0]
        result = matcher.match(d.trajectory)
        assert result.route.is_connected(city)
        from repro.eval.metrics import precision_recall

        __, recall = precision_recall(city, d.route, result.route)
        assert recall > 0.85

    def test_weaker_than_hmm_at_low_rate(self, city, drives):
        """The naive baseline must not beat the HMM on sparse noisy input —
        if it does, the smarter matchers buy nothing on this data."""
        from repro.mapmatching import GeometricMatcher, HMMMatcher

        geo_acc, hmm_acc = [], []
        for d in drives:
            low = downsample(d.trajectory, 120.0)
            geo_acc.append(
                route_accuracy(city, d.route, GeometricMatcher(city).match(low).route)
            )
            hmm_acc.append(
                route_accuracy(city, d.route, HMMMatcher(city).match(low).route)
            )
        assert np.mean(hmm_acc) >= np.mean(geo_acc) - 0.05
