"""Parameter tuning walkthrough: how φ, λ and k3 shape HRIS behaviour.

Reproduces the paper's parameter studies in miniature on one scenario so
the trade-offs are visible in seconds:

* φ (reference search radius) — too small finds no references, too large
  wastes time on irrelevant ones;
* λ (traverse-graph hop radius) — too small disconnects the graph;
* k3 (global routes returned) — more suggestions raise the best-case
  accuracy but dilute the average.

Run:  python examples/parameter_tuning.py
"""

import numpy as np

from repro import HRIS, HRISConfig, HRISMatcher
from repro.eval import (
    ExperimentTable,
    evaluate_accuracy_and_time,
    route_accuracy,
    sparse_scenario,
)
from repro.trajectory import downsample

INTERVAL_S = 300.0


def sweep_phi(scenario) -> ExperimentTable:
    table = ExperimentTable("phi sweep (accuracy / seconds)", "phi_m")
    for phi in (100.0, 300.0, 500.0, 800.0):
        matcher = HRISMatcher(
            HRIS(scenario.network, scenario.archive, HRISConfig(phi=phi))
        )
        acc, secs = evaluate_accuracy_and_time(
            scenario.network, matcher, scenario.queries, INTERVAL_S
        )
        table.record(int(phi), "accuracy", acc)
        table.record(int(phi), "seconds", secs)
    return table


def sweep_lambda(scenario) -> ExperimentTable:
    table = ExperimentTable("lambda sweep (TGI accuracy)", "lambda")
    for lam in (1, 2, 4, 6):
        matcher = HRISMatcher(
            HRIS(
                scenario.network,
                scenario.archive,
                HRISConfig(lam=lam, local_method="tgi"),
            )
        )
        acc, secs = evaluate_accuracy_and_time(
            scenario.network, matcher, scenario.queries, INTERVAL_S
        )
        table.record(lam, "accuracy", acc)
        table.record(lam, "seconds", secs)
    return table


def sweep_k3(scenario) -> ExperimentTable:
    table = ExperimentTable("k3 sweep (average vs best-of-k accuracy)", "k3")
    hris = HRIS(scenario.network, scenario.archive, HRISConfig())
    for k3 in (1, 3, 5, 8):
        avgs, maxs = [], []
        for case in scenario.queries:
            query = downsample(case.query, INTERVAL_S)
            if len(query) < 2:
                continue
            routes = hris.infer_routes(query, k3)
            accs = [
                route_accuracy(scenario.network, case.truth, g.route)
                for g in routes
            ]
            avgs.append(float(np.mean(accs)))
            maxs.append(float(np.max(accs)))
        table.record(k3, "average", float(np.mean(avgs)))
        table.record(k3, "best-of-k", float(np.mean(maxs)))
    return table


def main() -> None:
    print("Building a history-poor scenario (where tuning matters most)...")
    scenario = sparse_scenario()
    for sweep in (sweep_phi, sweep_lambda, sweep_k3):
        print()
        print(sweep(scenario).format())
    print(
        "\nTable II defaults (phi=500, lambda=4, k3=5) sit on the "
        "accuracy plateau of each sweep."
    )


if __name__ == "__main__":
    main()
