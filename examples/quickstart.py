"""Quickstart: infer the routes of a low-sampling-rate trajectory.

Builds a synthetic city with historical taxi demand, takes a high-rate
query trajectory, degrades it to a 3-minute sampling interval (the paper's
"low-sampling-rate" regime), and asks HRIS for its most likely routes.

Run:  python examples/quickstart.py
"""

from repro import HRIS, HRISConfig, build_scenario
from repro.datasets import ScenarioConfig
from repro.eval import route_accuracy, uncertainty_report
from repro.roadnet import GridCityConfig
from repro.trajectory import downsample


def main() -> None:
    print("Building the scenario (network + 170 historical trips)...")
    scenario = build_scenario(
        ScenarioConfig(
            grid=GridCityConfig(nx=14, ny=14),
            n_od_pairs=8,
            n_archive_trips=160,
            n_background_trips=10,
            n_queries=3,
            seed=11,
        )
    )
    network = scenario.network
    print(
        f"  network: {network.num_nodes} nodes / {network.num_segments} segments"
    )
    print(
        f"  archive: {len(scenario.archive)} trips, "
        f"{scenario.archive.num_points} GPS points"
    )

    hris = HRIS(network, scenario.archive, HRISConfig())

    case = scenario.queries[0]
    query = downsample(case.query, 180.0)  # 3-minute sampling interval
    print(
        f"\nQuery: {len(case.query)} points at "
        f"{case.query.mean_sampling_interval:.0f}s -> downsampled to "
        f"{len(query)} points at {query.mean_sampling_interval:.0f}s"
    )

    routes, detail = hris.infer_routes_with_details(query, k=5)
    print(f"\nTop-{len(routes)} inferred routes "
          f"(inference took {detail.total_time_s:.2f}s):")
    for rank, g in enumerate(routes, start=1):
        acc = route_accuracy(network, case.truth, g.route)
        print(
            f"  #{rank}: log-score={g.log_score:8.2f}  "
            f"length={g.route.length(network) / 1000.0:5.2f} km  "
            f"accuracy vs ground truth={acc:.3f}"
        )

    report = uncertainty_report(network, routes)
    print(f"\nUncertainty reduction: {report.describe()}")

    print("\nPer-pair diagnostics (reference counts and chosen method):")
    for i, pair in enumerate(detail.pairs):
        print(
            f"  pair {i}: {pair.n_references:3d} references "
            f"({pair.n_spliced} spliced), density={pair.density:7.1f}/km^2, "
            f"method={pair.method}"
        )


if __name__ == "__main__":
    main()
