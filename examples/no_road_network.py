"""Route inference without a road network (future-work extension).

The paper closes with: "we will also extend our solution to deal with the
case where the road network is not available".  This example exercises
that extension: the same low-sampling-rate query is answered twice — once
by the full HRIS (which knows the road network) and once by the
network-free inference, which only ever sees bare reference polylines and
clusters them into corridors by discrete Fréchet distance.

Run:  python examples/no_road_network.py
"""

from repro import HRIS, HRISConfig, build_scenario
from repro.core.freespace import FreeSpaceConfig, FreeSpaceInference
from repro.core.reference import ReferenceSearch
from repro.datasets import ScenarioConfig
from repro.eval import route_accuracy
from repro.roadnet import GridCityConfig
from repro.trajectory import downsample, hausdorff_distance


def main() -> None:
    print("Building the scenario...")
    scenario = build_scenario(
        ScenarioConfig(
            grid=GridCityConfig(nx=12, ny=12),
            n_od_pairs=5,
            n_archive_trips=140,
            n_background_trips=10,
            n_queries=3,
            seed=33,
        )
    )
    network = scenario.network
    case = scenario.queries[0]
    query = downsample(case.query, 240.0)
    truth_polyline = case.truth.points(network)
    print(
        f"Query: {len(query)} points at "
        f"{query.mean_sampling_interval:.0f}s; true route "
        f"{case.truth.length(network) / 1000.0:.1f} km"
    )

    # --- with the road network: the full HRIS ---------------------------
    hris = HRIS(network, scenario.archive, HRISConfig())
    with_net = hris.infer_routes(query, k=3)
    print("\nWith the road network (HRIS):")
    for rank, g in enumerate(with_net, start=1):
        acc = route_accuracy(network, case.truth, g.route)
        print(f"  #{rank}: A_L={acc:.3f}  length={g.route.length(network)/1000:.2f} km")

    # --- without any road network ---------------------------------------
    search = ReferenceSearch(
        scenario.archive, network, HRISConfig().reference_config()
    )
    fsi = FreeSpaceInference(FreeSpaceConfig(cluster_distance_m=250.0))
    free = fsi.infer(query, search, k=3)
    print("\nWithout a road network (corridor clustering):")
    for rank, g in enumerate(free, start=1):
        hd = hausdorff_distance(list(g.polyline), truth_polyline)
        print(
            f"  #{rank}: log-score={g.log_score:7.2f}  "
            f"Hausdorff distance to the true geometry: {hd:5.0f} m"
        )

    best = min(
        hausdorff_distance(list(g.polyline), truth_polyline) for g in free
    )
    print(
        f"\nThe best network-free corridor stays within {best:.0f} m of the "
        "true route geometry — inferred purely from historical polylines."
    )


if __name__ == "__main__":
    main()
