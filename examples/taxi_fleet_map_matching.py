"""Taxi-fleet map matching: the paper's evaluation scenario end to end.

Simulates a fleet of taxis whose raw GPS logs contain multiple trips with
parking periods in between (so the stay-point trip partitioning of the
preprocessing component actually runs), builds the archive from the raw
logs, and compares HRIS against the incremental / ST-matching / IVMM
baselines across sampling intervals — a miniature of the paper's Fig. 8a.

Run:  python examples/taxi_fleet_map_matching.py
"""

import numpy as np

from repro import HRIS, HRISConfig, HRISMatcher, TrajectoryArchive
from repro.datasets import alternative_routes, zipf_weights
from repro.eval import ExperimentTable, evaluate_accuracy
from repro.datasets import QueryCase
from repro.mapmatching import IncrementalMatcher, IVMMMatcher, STMatcher
from repro.roadnet import GridCityConfig, grid_city
from repro.trajectory import DriveConfig, GPSPoint, Trajectory, drive_route, shift_time


def simulate_taxi_shift(network, routes, probs, taxi_id, rng):
    """A taxi working a shift: several trips separated by idle parking."""
    log_points = []
    t = float(rng.uniform(0.0, 3_600.0))
    for __ in range(int(rng.integers(2, 4))):
        od_idx = int(rng.integers(len(routes)))
        route_idx = int(rng.choice(len(routes[od_idx]), p=probs[od_idx]))
        interval = float(rng.choice([30.0, 60.0, 120.0]))
        drive = drive_route(
            network,
            routes[od_idx][route_idx],
            taxi_id,
            start_time=t,
            config=DriveConfig(sample_interval_s=interval, gps_sigma_m=15.0),
            rng=rng,
        )
        log_points.extend(drive.trajectory.points)
        # Park for ~25 minutes at the drop-off: idle samples in one spot.
        end = drive.trajectory.points[-1]
        t = end.t
        for __i in range(5):
            t += 300.0
            jitter = rng.normal(0.0, 8.0, size=2)
            log_points.append(
                GPSPoint(end.point.translate(float(jitter[0]), float(jitter[1])), t)
            )
        t += 60.0
    return Trajectory.build(taxi_id, log_points)


def main() -> None:
    rng = np.random.default_rng(2024)
    print("Generating the city and the OD demand model...")
    network = grid_city(GridCityConfig(nx=14, ny=14), rng)
    node_ids = [n.node_id for n in network.nodes()]

    od_routes = []
    while len(od_routes) < 6:
        a, b = rng.choice(node_ids, size=2, replace=False)
        if network.node(int(a)).point.distance_to(network.node(int(b)).point) < 4000:
            continue
        routes = alternative_routes(network, int(a), int(b), 3, rng)
        if routes:
            od_routes.append(routes)
    probs = [zipf_weights(len(r), 1.5) for r in od_routes]

    print("Simulating 60 taxi shifts (raw logs with parking gaps)...")
    logs = [
        simulate_taxi_shift(network, od_routes, probs, taxi_id, rng)
        for taxi_id in range(60)
    ]

    print("Preprocessing: stay-point trip partition + R-tree indexing...")
    archive = TrajectoryArchive.from_raw_logs(logs)
    print(
        f"  {len(logs)} raw logs -> {len(archive)} trips "
        f"({archive.num_points} points)"
    )

    print("Generating evaluation queries with exact ground truth...")
    cases = []
    for q in range(8):
        od_idx = q % len(od_routes)
        route_idx = int(rng.choice(len(od_routes[od_idx]), p=probs[od_idx]))
        drive = drive_route(
            network,
            od_routes[od_idx][route_idx],
            10_000 + q,
            config=DriveConfig(sample_interval_s=15.0, gps_sigma_m=15.0),
            rng=rng,
        )
        cases.append(QueryCase(query=drive.trajectory, truth=drive.route))

    matchers = {
        "HRIS": HRISMatcher(HRIS(network, archive, HRISConfig())),
        "IVMM": IVMMMatcher(network),
        "ST-matching": STMatcher(network),
        "incremental": IncrementalMatcher(network),
    }

    table = ExperimentTable("Taxi fleet: accuracy vs sampling interval", "interval_min")
    for interval in (180.0, 300.0, 600.0, 900.0):
        for name, matcher in matchers.items():
            acc = evaluate_accuracy(network, matcher, cases, interval)
            table.record(int(interval // 60), name, acc)
    print()
    print(table.format())


if __name__ == "__main__":
    main()
