"""Reducing the uncertainty of a geotagged-photo trail.

The paper's introduction motivates very sparse trajectories with Flickr
photo trails: each photo has a location and a timestamp, and consecutive
photos can be half an hour apart.  This example builds such a trail (a
tourist driving between sights, photographing occasionally), and shows how
the number of plausible routes collapses once historical travel patterns
are brought in: instead of the thousands of topologically possible paths,
HRIS suggests a handful of scored routes.

Run:  python examples/sparse_photo_trail.py
"""

import numpy as np

from repro import HRIS, HRISConfig, TrajectoryArchive
from repro.datasets import alternative_routes, zipf_weights
from repro.eval import route_accuracy
from repro.roadnet import GridCityConfig, grid_city, yen_k_shortest_paths
from repro.trajectory import DriveConfig, downsample, drive_route


def count_possible_routes(network, source_node, target_node, cap=200):
    """How many distinct simple routes connect two nodes? (Capped count —
    the point is that the number is huge.)"""
    def adjacency(node):
        return (
            (network.segment(s).end, network.segment(s).length)
            for s in network.out_segments(node)
        )

    paths = yen_k_shortest_paths(adjacency, source_node, target_node, cap)
    return len(paths)


def main() -> None:
    rng = np.random.default_rng(77)
    print("Building the city and 120 historical trips...")
    network = grid_city(GridCityConfig(nx=20, ny=20), rng)
    node_ids = [n.node_id for n in network.nodes()]

    od_routes = []
    while len(od_routes) < 5:
        a, b = rng.choice(node_ids, size=2, replace=False)
        if network.node(int(a)).point.distance_to(network.node(int(b)).point) < 8000:
            continue
        routes = alternative_routes(network, int(a), int(b), 3, rng)
        if routes:
            od_routes.append(routes)
    probs = [zipf_weights(len(r), 1.5) for r in od_routes]

    archive = TrajectoryArchive()
    for k in range(120):
        od_idx = int(rng.integers(len(od_routes)))
        route_idx = int(rng.choice(len(od_routes[od_idx]), p=probs[od_idx]))
        drive = drive_route(
            network,
            od_routes[od_idx][route_idx],
            k,
            start_time=float(rng.uniform(0, 86_400)),
            config=DriveConfig(
                sample_interval_s=float(rng.choice([30.0, 60.0, 120.0])),
                gps_sigma_m=15.0,
            ),
            rng=rng,
        )
        archive.add(drive.trajectory)

    # The "tourist": drives the most popular route of corridor 0, but we
    # only see the trail of photo locations — one every ~8 minutes.
    truth_route = od_routes[0][0]
    tourist = drive_route(
        network,
        truth_route,
        9_999,
        # Sightseeing pace: well below the speed limits.
        config=DriveConfig(
            sample_interval_s=15.0, gps_sigma_m=25.0, speed_factor=0.45
        ),
        rng=rng,
    )
    photo_trail = downsample(tourist.trajectory, 480.0)
    print(
        f"\nPhoto trail: {len(photo_trail)} photos over "
        f"{photo_trail.duration / 60.0:.0f} minutes "
        f"(~{photo_trail.mean_sampling_interval / 60.0:.1f} min apart)"
    )

    src = truth_route.start_node(network)
    dst = truth_route.end_node(network)
    n_possible = count_possible_routes(network, src, dst)
    print(
        f"Topologically possible routes between the endpoints: "
        f">= {n_possible} (enumeration capped)"
    )

    hris = HRIS(network, archive, HRISConfig())
    routes = hris.infer_routes(photo_trail, k=5)
    print(f"\nHRIS reduces this to {len(routes)} scored suggestions:")
    for rank, g in enumerate(routes, start=1):
        acc = route_accuracy(network, tourist.route, g.route)
        marker = "  <-- actual path" if acc > 0.9 else ""
        print(
            f"  #{rank}: log-score={g.log_score:8.2f}  "
            f"length={g.route.length(network) / 1000.0:5.2f} km  "
            f"match with reality={acc:.3f}{marker}"
        )

    best = max(route_accuracy(network, tourist.route, g.route) for g in routes)
    print(
        f"\nBest suggestion matches {best:.0%} of the actually driven route."
    )


if __name__ == "__main__":
    main()
