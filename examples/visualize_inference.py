"""Render an inference to SVG: query, references, truth and suggestions.

Produces ``inference_map.svg`` in the working directory — the road network
in grey, the ground-truth route in green, HRIS's top suggestion in orange,
the sparse query samples as dots and the reference points that drove the
inference as a faint cloud.

Run:  python examples/visualize_inference.py
"""

from repro import HRIS, HRISConfig, build_scenario
from repro.core.reference import ReferenceSearch
from repro.datasets import ScenarioConfig
from repro.eval import route_accuracy
from repro.eval.svg import SVGMap
from repro.roadnet import GridCityConfig
from repro.trajectory import downsample


def main() -> None:
    scenario = build_scenario(
        ScenarioConfig(
            grid=GridCityConfig(nx=12, ny=12),
            n_od_pairs=5,
            n_archive_trips=120,
            n_background_trips=10,
            n_queries=3,
            seed=3,
        )
    )
    network = scenario.network
    case = scenario.queries[0]
    query = downsample(case.query, 240.0)

    hris = HRIS(network, scenario.archive, HRISConfig())
    routes = hris.infer_routes(query, k=3)
    top = routes[0]
    acc = route_accuracy(network, case.truth, top.route)
    print(
        f"Top-1 route: A_L={acc:.3f}, "
        f"{top.route.length(network) / 1000.0:.2f} km"
    )

    # Collect the reference points that drove the inference.
    search = ReferenceSearch(
        scenario.archive, network, HRISConfig().reference_config()
    )
    reference_points = []
    for i in range(len(query) - 1):
        for ref in search.search(query[i], query[i + 1]):
            reference_points.extend(ref.points)

    svg = SVGMap(network, width_px=1000)
    svg.add_points(reference_points, color="#e9c46a", radius=2.5, label="reference points")
    svg.add_route(case.truth, color="#2a9d8f", width=7, label="ground truth", opacity=0.6)
    svg.add_route(top.route, color="#e76f51", width=3, label=f"HRIS top-1 (A_L={acc:.2f})")
    svg.add_trajectory(query, color="#264653", radius=5, label="query samples")
    path = svg.save("inference_map.svg")
    print(f"Wrote {path} — open it in any browser.")


if __name__ == "__main__":
    main()
