#!/usr/bin/env python
"""Documentation checks: resolvable links and an executable tutorial.

Two guarantees, enforced in CI (the ``docs`` job):

1. **Every intra-repository markdown link resolves.**  All relative
   links in ``README.md``, ``DESIGN.md``, ``EXPERIMENTS.md`` and
   ``docs/*.md`` must point at files that exist (anchors and external
   ``http(s)``/``mailto`` targets are skipped).

2. **The tutorial runs.**  The plain ```` ```python ```` code blocks of
   ``docs/tutorial.md`` are executed *in order, in one shared
   namespace*, from a temporary working directory — the tutorial is a
   continuous session, so renamed APIs or undefined variables fail CI
   instead of rotting on the page.  Blocks tagged
   ```` ```python no-run ```` (those needing external files) are only
   compile-checked.

Usage::

    PYTHONPATH=src python tools/check_docs.py [--skip-tutorial]
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Markdown link/image targets: ``[text](target)`` / ``![alt](target)``.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Fenced code blocks with their info string.
_FENCE_RE = re.compile(r"^```([^\n`]*)\n(.*?)^```\s*$", re.MULTILINE | re.DOTALL)

_EXTERNAL = ("http://", "https://", "mailto:")


def doc_files() -> list[Path]:
    files = [
        REPO_ROOT / name
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md")
        if (REPO_ROOT / name).exists()
    ]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return files


def check_links() -> list[str]:
    """Every relative markdown link must resolve from its file's directory."""
    errors = []
    for doc in doc_files():
        text = doc.read_text(encoding="utf-8")
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(
                    f"{doc.relative_to(REPO_ROOT)}: broken link "
                    f"'{target}' (resolved to {resolved})"
                )
    return errors


def tutorial_blocks() -> list[tuple[str, str, int]]:
    """``(tag, source, line)`` per fenced block of the tutorial."""
    path = REPO_ROOT / "docs" / "tutorial.md"
    text = path.read_text(encoding="utf-8")
    blocks = []
    for match in _FENCE_RE.finditer(text):
        info = match.group(1).strip()
        line = text[: match.start()].count("\n") + 2  # first code line
        blocks.append((info, match.group(2), line))
    return blocks


def check_tutorial() -> list[str]:
    """Execute runnable blocks sequentially; compile-check ``no-run`` ones."""
    errors = []
    namespace: dict = {"__name__": "__tutorial__"}
    cwd = os.getcwd()
    with tempfile.TemporaryDirectory(prefix="repro-tutorial-") as workdir:
        os.chdir(workdir)  # tutorial writes files (archive.jsonl, compare.svg)
        try:
            for info, source, line in tutorial_blocks():
                label = f"docs/tutorial.md:{line}"
                if info == "python no-run":
                    try:
                        compile(source, label, "exec")
                    except SyntaxError as exc:
                        errors.append(f"{label}: no-run block does not compile: {exc}")
                    continue
                if info != "python":
                    continue  # shell/other fences are not executed
                print(f"running {label} ...", flush=True)
                try:
                    exec(compile(source, label, "exec"), namespace)
                except Exception as exc:  # report and stop: later blocks depend on it
                    errors.append(f"{label}: {type(exc).__name__}: {exc}")
                    break
        finally:
            os.chdir(cwd)
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--skip-tutorial",
        action="store_true",
        help="only check links (fast; no scenario build)",
    )
    args = parser.parse_args(argv)

    errors = check_links()
    print(f"link check: {len(doc_files())} files, {len(errors)} broken link(s)")
    if not args.skip_tutorial:
        errors.extend(check_tutorial())
    for error in errors:
        print(f"ERROR: {error}", file=sys.stderr)
    if not errors:
        print("docs OK")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
