#!/usr/bin/env python
"""Documentation checks: resolvable links, reachability, executable docs.

Three guarantees, enforced in CI (the ``docs`` job):

1. **Every intra-repository markdown link resolves.**  All relative
   links in ``README.md``, ``DESIGN.md``, ``EXPERIMENTS.md`` and
   ``docs/*.md`` must point at files that exist (anchors and external
   ``http(s)``/``mailto`` targets are skipped).

2. **No orphaned documentation.**  Every checked markdown file must be
   reachable from ``README.md`` by following relative markdown links —
   a handbook nobody links to is a handbook nobody reads.  Repository
   meta-files (``ROADMAP.md``, ``CHANGES.md``, ...) are exempt.

3. **Executable docs run.**  The plain ```` ```python ```` code blocks
   of ``docs/tutorial.md`` and ``docs/serving.md`` are executed *in
   order, in one shared namespace per document*, from a temporary
   working directory — each document is a continuous session, so
   renamed APIs or undefined variables fail CI instead of rotting on
   the page.  Blocks tagged ```` ```python no-run ```` (those needing
   external files or long-running servers) are only compile-checked.

Usage::

    PYTHONPATH=src python tools/check_docs.py [--skip-tutorial]
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Markdown link/image targets: ``[text](target)`` / ``![alt](target)``.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Fenced code blocks with their info string.
_FENCE_RE = re.compile(r"^```([^\n`]*)\n(.*?)^```\s*$", re.MULTILINE | re.DOTALL)

_EXTERNAL = ("http://", "https://", "mailto:")

#: Documents whose ```python blocks are executed as separate sessions.
EXECUTABLE_DOCS = ("docs/tutorial.md", "docs/serving.md")

#: Repository meta-files that need not be linked from README.md.
ORPHAN_EXEMPT = {
    "ROADMAP.md",
    "CHANGES.md",
    "ISSUE.md",
    "PAPER.md",
    "PAPERS.md",
    "SNIPPETS.md",
}


def doc_files() -> list[Path]:
    files = [
        REPO_ROOT / name
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md")
        if (REPO_ROOT / name).exists()
    ]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return files


def _markdown_targets(doc: Path) -> list[Path]:
    """Resolved intra-repo markdown files linked from ``doc``."""
    targets = []
    for match in _LINK_RE.finditer(doc.read_text(encoding="utf-8")):
        target = match.group(1)
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        path_part = target.split("#", 1)[0]
        if not path_part or not path_part.endswith(".md"):
            continue
        resolved = (doc.parent / path_part).resolve()
        if resolved.exists():
            targets.append(resolved)
    return targets


def check_links() -> list[str]:
    """Every relative markdown link must resolve from its file's directory."""
    errors = []
    for doc in doc_files():
        text = doc.read_text(encoding="utf-8")
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(
                    f"{doc.relative_to(REPO_ROOT)}: broken link "
                    f"'{target}' (resolved to {resolved})"
                )
    return errors


def check_reachability() -> list[str]:
    """Every checked doc must be reachable from README.md via links."""
    readme = REPO_ROOT / "README.md"
    if not readme.exists():
        return ["README.md missing — cannot check documentation reachability"]
    reachable = {readme}
    frontier = [readme]
    while frontier:
        doc = frontier.pop()
        for target in _markdown_targets(doc):
            if target not in reachable:
                reachable.add(target)
                frontier.append(target)
    errors = []
    for doc in doc_files():
        rel = doc.relative_to(REPO_ROOT)
        if doc in reachable or str(rel) in ORPHAN_EXEMPT:
            continue
        errors.append(
            f"{rel}: orphaned — not reachable from README.md by markdown links"
        )
    return errors


def doc_blocks(relpath: str) -> list[tuple[str, str, int]]:
    """``(tag, source, line)`` per fenced block of a document."""
    text = (REPO_ROOT / relpath).read_text(encoding="utf-8")
    blocks = []
    for match in _FENCE_RE.finditer(text):
        info = match.group(1).strip()
        line = text[: match.start()].count("\n") + 2  # first code line
        blocks.append((info, match.group(2), line))
    return blocks


def check_executable(relpath: str) -> list[str]:
    """Execute runnable blocks sequentially; compile-check ``no-run`` ones.

    Each document runs in its own namespace and temporary working
    directory: the tutorial and the serving handbook are independent
    sessions.
    """
    errors = []
    namespace: dict = {"__name__": "__" + Path(relpath).stem + "__"}
    cwd = os.getcwd()
    with tempfile.TemporaryDirectory(prefix="repro-docs-") as workdir:
        os.chdir(workdir)  # docs write files (archive.jsonl, compare.svg)
        try:
            for info, source, line in doc_blocks(relpath):
                label = f"{relpath}:{line}"
                if info == "python no-run":
                    try:
                        compile(source, label, "exec")
                    except SyntaxError as exc:
                        errors.append(f"{label}: no-run block does not compile: {exc}")
                    continue
                if info != "python":
                    continue  # shell/other fences are not executed
                print(f"running {label} ...", flush=True)
                try:
                    exec(compile(source, label, "exec"), namespace)
                except Exception as exc:  # report and stop: later blocks depend on it
                    errors.append(f"{label}: {type(exc).__name__}: {exc}")
                    break
        finally:
            os.chdir(cwd)
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--skip-tutorial",
        action="store_true",
        help="only check links and reachability (fast; no scenario build)",
    )
    args = parser.parse_args(argv)

    errors = check_links()
    print(f"link check: {len(doc_files())} files, {len(errors)} broken link(s)")
    orphans = check_reachability()
    print(f"reachability check: {len(orphans)} orphaned file(s)")
    errors.extend(orphans)
    if not args.skip_tutorial:
        for relpath in EXECUTABLE_DOCS:
            if (REPO_ROOT / relpath).exists():
                errors.extend(check_executable(relpath))
    for error in errors:
        print(f"ERROR: {error}", file=sys.stderr)
    if not errors:
        print("docs OK")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
