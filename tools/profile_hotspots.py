#!/usr/bin/env python
"""Profile the hot paths of a routing configuration with cProfile.

The throughput benchmark answers *how fast* each configuration is; this
tool answers *where the time goes*.  It builds the standard evaluation
scenario, runs every query through the chosen configuration under
cProfile, and prints the top functions by cumulative time::

    PYTHONPATH=src python tools/profile_hotspots.py --config ch --top 25
    PYTHONPATH=src python tools/profile_hotspots.py --config table_oracle \
        --sort tottime

Configurations are the same named set as ``tools/check_identity.py``
(``engine``, ``bidirectional``, ``table_oracle``, ``ch``,
``no_landmarks``), so a profile always corresponds to an
identity-gated configuration.  ``--matcher`` profiles HMM map-matching
on a grid city instead of the inference scenario — the workload where
the many-to-many transition oracles (``table`` vs ``ch_buckets``)
differ most.

Caveat: cProfile charges a fixed overhead per function call, which
inflates configurations that make many cheap calls relative to those
that make few expensive ones.  Use the output to find hotspots inside
one configuration; use ``benchmarks/bench_throughput.py`` (plain
``perf_counter`` timings) to compare configurations against each other.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def _inference_workload(config_name: str, n_queries: int, interval: float):
    """Return a zero-arg callable running the inference scenario."""
    from repro.core.system import HRIS
    from repro.eval.harness import standard_scenario
    from repro.trajectory.resample import downsample

    sys.path.insert(0, str(REPO_ROOT / "tools"))
    from check_identity import _configs

    configs = _configs()
    if config_name not in configs:
        raise SystemExit(
            f"unknown config {config_name!r}; choose from {sorted(configs)}"
        )
    scenario = standard_scenario(seed=7, n_queries=n_queries)
    queries = [
        q
        for q in (downsample(c.query, interval) for c in scenario.queries)
        if len(q) >= 2
    ]
    hris = HRIS(scenario.network, scenario.archive, configs[config_name])
    hris.infer_routes(queries[0])  # warm caches outside the profile

    def run():
        for q in queries:
            hris.infer_routes(q)

    return run, f"{len(queries)} inference queries"


def _matcher_workload(config_name: str, grid_n: int, n_drives: int):
    """Return a zero-arg callable map-matching simulated drives."""
    import numpy as np

    from repro.mapmatching.hmm import HMMConfig, HMMMatcher
    from repro.roadnet.engine import EngineConfig, RoutingEngine
    from repro.roadnet.generators import GridCityConfig, grid_city
    from repro.roadnet.shortest_path import shortest_route_between_nodes
    from repro.trajectory.simulate import DriveConfig, drive_route

    engine_cfgs = {
        "engine": EngineConfig(),
        "table_oracle": EngineConfig(transition_oracle="table", bidirectional=True),
        "ch": EngineConfig(shortest_path="ch", transition_oracle="ch_buckets"),
    }
    if config_name not in engine_cfgs:
        raise SystemExit(
            f"--matcher supports configs {sorted(engine_cfgs)}, not {config_name!r}"
        )
    city = grid_city(
        GridCityConfig(nx=grid_n, ny=grid_n, drop_fraction=0.08, one_way_fraction=0.1),
        np.random.default_rng(41),
    )
    n_nodes = len(list(city.nodes()))
    drive_rng = np.random.default_rng(5)
    trajs = []
    for k in range(n_drives):
        a, b = drive_rng.choice(n_nodes, size=2, replace=False)
        __, route = shortest_route_between_nodes(city, int(a), int(b))
        if not route.segment_ids:
            continue
        drive = drive_route(
            city,
            route,
            traj_id=k,
            config=DriveConfig(sample_interval_s=15.0, gps_sigma_m=12.0),
            rng=np.random.default_rng(100 + k),
        )
        trajs.append(drive.trajectory)
    engine = RoutingEngine(city, engine_cfgs[config_name])
    engine.hierarchy  # contraction happens outside the profile
    matcher = HMMMatcher(city, HMMConfig(), engine=engine)

    def run():
        for t in trajs:
            matcher.match(t)

    return run, f"{len(trajs)} drives on a {n_nodes}-node grid"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--config",
        default="ch",
        help="configuration name (see tools/check_identity.py)",
    )
    parser.add_argument(
        "--matcher",
        action="store_true",
        help="profile HMM map-matching instead of route inference",
    )
    parser.add_argument("--top", type=int, default=25, help="rows to print")
    parser.add_argument(
        "--sort",
        default="cumulative",
        choices=["cumulative", "tottime", "ncalls"],
        help="pstats sort key",
    )
    parser.add_argument("--queries", type=int, default=8, help="inference queries")
    parser.add_argument(
        "--interval", type=float, default=300.0, help="sampling interval (s)"
    )
    parser.add_argument("--grid", type=int, default=20, help="matcher grid side")
    parser.add_argument("--drives", type=int, default=6, help="matcher drives")
    args = parser.parse_args(argv)

    if args.matcher:
        run, desc = _matcher_workload(args.config, args.grid, args.drives)
    else:
        run, desc = _inference_workload(args.config, args.queries, args.interval)
    print(f"profiling {args.config!r}: {desc}")

    profiler = cProfile.Profile()
    profiler.enable()
    run()
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
