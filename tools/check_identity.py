#!/usr/bin/env python
"""Identity gate: prove a configuration reproduces the seed routes exactly.

Every optimisation in this repository must change *when* work happens,
never *what* is computed — the top-K routes and scores of every engine,
oracle and archive configuration are required to be bit-identical to the
seed baseline.  This tool is the single parameterised gate behind that
rule, in two modes:

**Report mode** (CI): check the ``identical_results`` block of a
benchmark report written by ``benchmarks/bench_throughput.py``::

    python tools/check_identity.py --report benchmarks/results/BENCH_throughput_smoke.json \
        --require sharded_vs_seed remote_vs_seed shard_reference_vs_seed

Exits non-zero when any required key — or any key at all — is false.
``--expect-degraded`` additionally asserts the replicated fleet really
lost a replica during the run (otherwise the degraded-mode gate proves
nothing).

**Live mode**: build the named configuration and the seed baseline on the
standard scenario, infer every query through both, and diff the routes::

    PYTHONPATH=src python tools/check_identity.py --config table_oracle --queries 8

Configurations are named in ``_configs``; each is expected to be
results-identical to the seed by construction.  The ``shard_reference``
configuration is special: it spins up a loopback shard fleet and runs
``reference_mode="shard"``, so the diff also covers the
``repro-remote-v4`` shard-side reference assembly and the client's
cross-shard span stitching.  ``wal_recovery`` is the durability gate: it
spawns real ``repro archive-serve --wal-dir`` subprocesses, SIGKILLs one
mid-ingest, restarts it from its write-ahead log on disk, idempotently
re-pushes the feed and requires bit-identical routes — a process death
must never change an answer.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def _configs():
    """Named identity-preserving configurations (lazily imported)."""
    from repro.core.system import HRISConfig

    return {
        "engine": HRISConfig(),
        "bidirectional": HRISConfig(bidirectional=True),
        "table_oracle": HRISConfig(transition_oracle="table", bidirectional=True),
        # Contraction hierarchy behind both the point-to-point queries and
        # the matcher transition tables (bucket joins).
        "ch": HRISConfig(shortest_path="ch", transition_oracle="ch_buckets"),
        "no_landmarks": HRISConfig(n_landmarks=0),
        # References assembled by a loopback shard fleet (repro-remote-v4);
        # check_live swaps the archive for a RemoteShardedArchive.
        "shard_reference": HRISConfig(reference_mode="shard"),
        # Served over HTTP by a loopback InferenceGateway; check_live
        # replays every query through the wire and diffs the JSON routes.
        "gateway": HRISConfig(),
        # Durability: real archive-serve subprocesses with on-disk WALs,
        # one SIGKILLed mid-ingest and restarted from its log; check_live
        # rebuilds the fleet client against the recovered processes.
        "wal_recovery": HRISConfig(),
    }


def check_report(path: Path, require, expect_degraded: bool) -> int:
    report = json.loads(path.read_text(encoding="utf-8"))
    identical = report["identical_results"]
    print(json.dumps(identical, indent=2))
    status = 0
    for key in require:
        if key not in identical:
            print(f"FAIL: required identity key {key!r} missing from report")
            status = 1
        elif not identical[key]:
            print(f"FAIL: {key} produced different top-K routes")
            status = 1
    if not all(identical.values()):
        bad = [k for k, v in identical.items() if not v]
        print(f"FAIL: non-identical configurations: {', '.join(bad)}")
        status = 1
    if expect_degraded:
        degraded = report["replicated_archive"]
        print(
            f"degraded fleet: {degraded['healthy_replicas']}/"
            f"{degraded['total_replicas']} replicas healthy, "
            f"{degraded['failovers']} failovers"
        )
        if degraded["healthy_replicas"] >= degraded["total_replicas"]:
            print("FAIL: the kill did not degrade the fleet — gate proved nothing")
            status = 1
    if status == 0:
        print("identity gate passed")
    return status


def check_live(config_name: str, n_queries: int, interval: float) -> int:
    from repro.core.system import HRIS
    from repro.eval.harness import standard_scenario
    from repro.trajectory.resample import downsample

    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    from bench_throughput import SEED_BASELINE, result_keys

    configs = _configs()
    if config_name not in configs:
        print(f"unknown config {config_name!r}; choose from {sorted(configs)}")
        return 2

    scenario = standard_scenario(seed=7, n_queries=n_queries)
    queries = [
        q
        for q in (downsample(c.query, interval) for c in scenario.queries)
        if len(q) >= 2
    ]
    print(f"{len(queries)} queries · config {config_name!r} vs seed baseline")

    servers = []
    procs = []
    wal_root = None
    archive = scenario.archive
    if config_name == "shard_reference":
        from repro.core.archive import convert_archive
        from repro.core.remote import ArchiveShardServer

        num_shards, tile_size = 2, 800.0
        servers = [
            ArchiveShardServer(i, num_shards, tile_size).start()
            for i in range(num_shards)
        ]
        addrs = [f"127.0.0.1:{s.address[1]}" for s in servers]
        archive = convert_archive(scenario.archive, "remote", tile_size, addrs)
        print(f"loopback fleet: {num_shards} shards, tile={tile_size:.0f}m")
    elif config_name == "wal_recovery":
        import os
        import re
        import subprocess
        import tempfile

        from repro.core.archive import convert_archive, make_archive
        from repro.core.remote import ShardUnavailableError

        num_shards, tile_size = 2, 800.0
        wal_root = Path(tempfile.mkdtemp(prefix="repro-wal-gate-"))
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        announce_re = re.compile(r"serving .+ on ([\d.]+):(\d+),")

        def spawn(shard_index: int):
            proc = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.cli",
                    "archive-serve",
                    "--shard-index",
                    str(shard_index),
                    "--num-shards",
                    str(num_shards),
                    "--tile-size",
                    str(tile_size),
                    "--wal-dir",
                    str(wal_root / f"shard{shard_index}"),
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
                env=env,
                cwd=str(REPO_ROOT),
            )
            while True:
                line = proc.stdout.readline()
                if not line:
                    raise RuntimeError(
                        f"shard {shard_index} exited before announcing "
                        f"(rc={proc.poll()})"
                    )
                match = announce_re.search(line)
                if match:
                    return proc, f"{match.group(1)}:{match.group(2)}"

        addrs = []
        for i in range(num_shards):
            proc, addr = spawn(i)
            procs.append(proc)
            addrs.append(addr)
        print(f"subprocess fleet: {num_shards} shards with WALs under {wal_root}")

        # Stream trips in and SIGKILL shard 0 halfway through: no clean
        # shutdown, no final fsync beyond what each ack already forced.
        feeder = make_archive("remote", tile_size, addrs)
        trips = [scenario.archive._trajectories[t] for t in sorted(scenario.archive._trajectories)]
        kill_at = len(trips) // 2
        crash_seen = False
        try:
            for j, trip in enumerate(trips):
                if j == kill_at:
                    procs[0].kill()
                    procs[0].wait(timeout=10)
                feeder._restore(trip)
        except ShardUnavailableError:
            crash_seen = True
        feeder.close()
        if not crash_seen:
            print("FAIL: SIGKILL of shard 0 was never observed by the feeder")
            return 1
        print(f"killed shard 0 (-9) after {kill_at}/{len(trips)} trips")

        # Restart from the same WAL directory, then re-push the whole
        # feed with a fresh client: acknowledged rows were recovered from
        # the log, so the re-push is idempotent by construction.
        proc0, addr0 = spawn(0)
        procs[0] = proc0
        addrs[0] = addr0
        archive = convert_archive(scenario.archive, "remote", tile_size, addrs)
        print("restarted shard 0 from its WAL and re-pushed the feed")

    try:
        h_seed = HRIS(scenario.network, scenario.archive, SEED_BASELINE)
        h_cfg = HRIS(scenario.network, archive, configs[config_name])
        ref = result_keys([h_seed.infer_routes(q) for q in queries])
        if config_name == "gateway":
            from repro.serve import (
                GatewayClient,
                GatewayConfig,
                InferenceGateway,
                hris_backends,
            )

            gateway = InferenceGateway(
                hris_backends(h_cfg, 2), GatewayConfig(max_inflight=4, max_queue=4)
            )
            host, port = gateway.start()
            print(f"loopback gateway: http://{host}:{port} (2 workers)")
            try:
                with GatewayClient(host, port) as client:
                    replies = [client.infer(q) for q in queries]
                for reply in replies:
                    if reply.status != 200:
                        print(f"FAIL: gateway returned {reply.status}: {reply.payload}")
                        return 1
                got = [reply.route_keys() for reply in replies]
            finally:
                gateway.stop()
        else:
            got = result_keys([h_cfg.infer_routes(q) for q in queries])
    finally:
        if archive is not scenario.archive:
            archive.close()
        for server in servers:
            server.stop()
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=10)
                except Exception:
                    proc.kill()
        if wal_root is not None:
            import shutil

            shutil.rmtree(wal_root, ignore_errors=True)

    diverged = [i for i, (a, b) in enumerate(zip(ref, got)) if a != b]
    if diverged:
        for i in diverged:
            print(f"FAIL: query {i} diverged")
            print(f"  seed: {ref[i]}")
            print(f"  {config_name}: {got[i]}")
        return 1
    print(f"identical top-K routes and scores on all {len(queries)} queries")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--report", type=Path, help="benchmark report JSON to gate")
    mode.add_argument("--config", help="configuration name for a live diff")
    parser.add_argument(
        "--require",
        nargs="*",
        default=[],
        metavar="KEY",
        help="identity keys that must be present and true in the report",
    )
    parser.add_argument(
        "--expect-degraded",
        action="store_true",
        help="assert the replicated fleet lost a replica during the run",
    )
    parser.add_argument("--queries", type=int, default=8, help="live-mode queries")
    parser.add_argument(
        "--interval", type=float, default=300.0, help="live-mode sampling interval (s)"
    )
    args = parser.parse_args(argv)

    if args.report is not None:
        return check_report(args.report, args.require, args.expect_degraded)
    return check_live(args.config, args.queries, args.interval)


if __name__ == "__main__":
    raise SystemExit(main())
